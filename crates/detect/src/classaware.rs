//! Class-aware pair detection.
//!
//! The binary detectors in [`crate::oracle`] treat a "failure" as a
//! single event, as the paper's study does. In reality the detection
//! machinery differs by failure mode (Section 2.1): an **evident**
//! failure is caught by generic means (exceptions, timeouts) with
//! certainty, while a **non-evident** failure is caught only with the
//! oracle's coverage, and correct responses may be flagged spuriously.
//! [`ClassAwareDetector`] scores a pair of [`ResponseClass`]es through
//! two per-release [`ClassOracle`]s and reduces the verdicts to the
//! [`DemandOutcome`] the Bayesian inference consumes.

use wsu_simcore::rng::StreamRng;
use wsu_wstack::outcome::ResponseClass;

use crate::classify::ClassOracle;
use crate::oracle::DemandOutcome;

/// Scores a release pair with per-class detection characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassAwareDetector {
    oracle_a: ClassOracle,
    oracle_b: ClassOracle,
}

impl ClassAwareDetector {
    /// Creates a detector with the same oracle on both releases.
    pub fn symmetric(oracle: ClassOracle) -> ClassAwareDetector {
        ClassAwareDetector {
            oracle_a: oracle,
            oracle_b: oracle,
        }
    }

    /// Creates a detector with distinct per-release oracles.
    pub fn new(oracle_a: ClassOracle, oracle_b: ClassOracle) -> ClassAwareDetector {
        ClassAwareDetector { oracle_a, oracle_b }
    }

    /// The oracle judging release A.
    pub fn oracle_a(&self) -> ClassOracle {
        self.oracle_a
    }

    /// The oracle judging release B.
    pub fn oracle_b(&self) -> ClassOracle {
        self.oracle_b
    }

    /// Scores one demand's pair of ground-truth response classes.
    pub fn observe_pair(
        &mut self,
        a: ResponseClass,
        b: ResponseClass,
        rng: &mut StreamRng,
    ) -> DemandOutcome {
        DemandOutcome::new(
            self.oracle_a.judge(a, rng).is_failure(),
            self.oracle_b.judge(b, rng).is_failure(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evident_failures_always_scored() {
        let mut det = ClassAwareDetector::symmetric(ClassOracle::new(0.0, 0.0));
        let mut rng = StreamRng::from_seed(1);
        let seen = det.observe_pair(
            ResponseClass::EvidentFailure,
            ResponseClass::EvidentFailure,
            &mut rng,
        );
        assert_eq!(seen, DemandOutcome::BOTH_FAILED);
    }

    #[test]
    fn non_evident_failures_scored_with_coverage() {
        let mut det = ClassAwareDetector::symmetric(ClassOracle::new(0.85, 0.0));
        let mut rng = StreamRng::from_seed(2);
        let n = 100_000;
        let caught_a = (0..n)
            .filter(|_| {
                det.observe_pair(
                    ResponseClass::NonEvidentFailure,
                    ResponseClass::Correct,
                    &mut rng,
                )
                .a_failed
            })
            .count();
        assert!((caught_a as f64 / n as f64 - 0.85).abs() < 0.01);
    }

    #[test]
    fn correct_pairs_clean_without_false_alarms() {
        let mut det = ClassAwareDetector::symmetric(ClassOracle::perfect());
        let mut rng = StreamRng::from_seed(3);
        for _ in 0..1_000 {
            let seen = det.observe_pair(ResponseClass::Correct, ResponseClass::Correct, &mut rng);
            assert_eq!(seen, DemandOutcome::BOTH_OK);
        }
    }

    #[test]
    fn asymmetric_oracles() {
        // A's oracle is blind to NER, B's is perfect.
        let mut det = ClassAwareDetector::new(ClassOracle::new(0.0, 0.0), ClassOracle::perfect());
        let mut rng = StreamRng::from_seed(4);
        let seen = det.observe_pair(
            ResponseClass::NonEvidentFailure,
            ResponseClass::NonEvidentFailure,
            &mut rng,
        );
        assert!(!seen.a_failed);
        assert!(seen.b_failed);
        assert_eq!(det.oracle_a().ner_coverage(), 0.0);
        assert_eq!(det.oracle_b().ner_coverage(), 1.0);
    }

    #[test]
    fn false_alarms_flag_correct_responses() {
        let mut det = ClassAwareDetector::symmetric(ClassOracle::new(1.0, 1.0));
        let mut rng = StreamRng::from_seed(5);
        let seen = det.observe_pair(ResponseClass::Correct, ResponseClass::Correct, &mut rng);
        assert_eq!(seen, DemandOutcome::BOTH_FAILED);
    }
}
