//! Failure-detection models.
//!
//! The Bayesian inference of Section 5.1 is driven by *observed* scores,
//! not ground truth: imperfect failure detection biases the posteriors and
//! therefore the decision when to switch to the new release
//! (Section 5.1.1.3). This crate models the detection mechanisms the paper
//! simulates, plus the "false alarm" mechanism it discusses but excludes:
//!
//! * [`oracle::PerfectOracle`] — scores every demand correctly;
//! * [`oracle::OmissionOracle`] — misses a release's failure with
//!   probability `P_omit` (the paper uses `P_omit = 0.15`);
//! * [`back2back::BackToBackDetector`] — compares the two releases'
//!   responses; under the paper's pessimistic assumption coincident
//!   failures are identical and therefore invisible (`11 → 00`);
//! * [`oracle::FalseAlarmOracle`] — flags correct responses as failures
//!   with probability `P_false` (pessimistic bias, paper Section 5.1.1.3
//!   "not dangerous");
//! * [`oracle::ChainDetector`] — composes detectors, e.g. back-to-back
//!   comparison followed by imperfect per-release oracles;
//! * [`classify`] — response-class-level verdicts for the middleware's
//!   monitoring subsystem (evident failures are always detected, a
//!   non-evident failure only with the oracle's coverage);
//! * [`coverage`] — confusion-matrix audits of a detector against ground
//!   truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod back2back;
pub mod classaware;
pub mod classify;
pub mod coverage;
pub mod oracle;

pub use back2back::BackToBackDetector;
pub use classaware::ClassAwareDetector;
pub use classify::{ClassOracle, Verdict};
pub use coverage::DetectionAudit;
pub use oracle::{
    ChainDetector, DemandOutcome, FailureDetector, FalseAlarmOracle, OmissionOracle, PerfectOracle,
};
