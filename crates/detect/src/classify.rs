//! Response-class-level verdicts for the monitoring subsystem.
//!
//! The middleware's monitoring tool (paper Section 4.3) scores each
//! release's response on every demand. Evident failures are detected by
//! generic means (exceptions, timeouts) and are always caught; a
//! non-evident failure is only caught with the oracle's *coverage*; and a
//! correct response may be flagged spuriously (false alarm).

use wsu_simcore::rng::StreamRng;
use wsu_wstack::outcome::ResponseClass;

/// The monitoring subsystem's judgement of one response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The response was judged correct.
    JudgedCorrect,
    /// The response was judged a failure.
    JudgedFailed,
}

impl Verdict {
    /// Returns `true` if judged a failure.
    pub fn is_failure(self) -> bool {
        self == Verdict::JudgedFailed
    }
}

/// An imperfect classifier of individual responses.
///
/// # Example
///
/// ```
/// use wsu_detect::classify::{ClassOracle, Verdict};
/// use wsu_simcore::rng::StreamRng;
/// use wsu_wstack::outcome::ResponseClass;
///
/// // 85% coverage of non-evident failures, no false alarms.
/// let mut oracle = ClassOracle::new(0.85, 0.0);
/// let mut rng = StreamRng::from_seed(1);
/// // Evident failures are always caught.
/// assert_eq!(
///     oracle.judge(ResponseClass::EvidentFailure, &mut rng),
///     Verdict::JudgedFailed
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassOracle {
    ner_coverage: f64,
    p_false_alarm: f64,
}

impl ClassOracle {
    /// Creates an oracle that catches a non-evident failure with
    /// probability `ner_coverage` and flags a correct response with
    /// probability `p_false_alarm`.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(ner_coverage: f64, p_false_alarm: f64) -> ClassOracle {
        for p in [ner_coverage, p_false_alarm] {
            assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        }
        ClassOracle {
            ner_coverage,
            p_false_alarm,
        }
    }

    /// A perfect classifier.
    pub fn perfect() -> ClassOracle {
        ClassOracle::new(1.0, 0.0)
    }

    /// Coverage of non-evident failures.
    pub fn ner_coverage(self) -> f64 {
        self.ner_coverage
    }

    /// False-alarm probability on correct responses.
    pub fn p_false_alarm(self) -> f64 {
        self.p_false_alarm
    }

    /// Judges one response of the given ground-truth class.
    pub fn judge(&mut self, truth: ResponseClass, rng: &mut StreamRng) -> Verdict {
        match truth {
            // Evident failures are caught by generic mechanisms.
            ResponseClass::EvidentFailure => Verdict::JudgedFailed,
            ResponseClass::NonEvidentFailure => {
                if rng.bernoulli(self.ner_coverage) {
                    Verdict::JudgedFailed
                } else {
                    Verdict::JudgedCorrect
                }
            }
            ResponseClass::Correct => {
                if rng.bernoulli(self.p_false_alarm) {
                    Verdict::JudgedFailed
                } else {
                    Verdict::JudgedCorrect
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evident_failures_always_caught() {
        let mut oracle = ClassOracle::new(0.0, 0.0);
        let mut rng = StreamRng::from_seed(1);
        for _ in 0..100 {
            assert_eq!(
                oracle.judge(ResponseClass::EvidentFailure, &mut rng),
                Verdict::JudgedFailed
            );
        }
    }

    #[test]
    fn perfect_oracle_matches_truth() {
        let mut oracle = ClassOracle::perfect();
        let mut rng = StreamRng::from_seed(2);
        assert_eq!(
            oracle.judge(ResponseClass::Correct, &mut rng),
            Verdict::JudgedCorrect
        );
        assert_eq!(
            oracle.judge(ResponseClass::NonEvidentFailure, &mut rng),
            Verdict::JudgedFailed
        );
    }

    #[test]
    fn ner_coverage_rate() {
        let mut oracle = ClassOracle::new(0.85, 0.0);
        let mut rng = StreamRng::from_seed(3);
        let n = 100_000;
        let caught = (0..n)
            .filter(|_| {
                oracle
                    .judge(ResponseClass::NonEvidentFailure, &mut rng)
                    .is_failure()
            })
            .count();
        assert!((caught as f64 / n as f64 - 0.85).abs() < 0.005);
    }

    #[test]
    fn false_alarm_rate() {
        let mut oracle = ClassOracle::new(1.0, 0.05);
        let mut rng = StreamRng::from_seed(4);
        let n = 100_000;
        let flagged = (0..n)
            .filter(|_| oracle.judge(ResponseClass::Correct, &mut rng).is_failure())
            .count();
        assert!((flagged as f64 / n as f64 - 0.05).abs() < 0.005);
    }

    #[test]
    fn verdict_predicate() {
        assert!(Verdict::JudgedFailed.is_failure());
        assert!(!Verdict::JudgedCorrect.is_failure());
    }

    #[test]
    fn accessors() {
        let oracle = ClassOracle::new(0.8, 0.1);
        assert_eq!(oracle.ner_coverage(), 0.8);
        assert_eq!(oracle.p_false_alarm(), 0.1);
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn rejects_bad_coverage() {
        let _ = ClassOracle::new(1.5, 0.0);
    }
}
