//! Back-to-back comparison testing.
//!
//! With two releases running side by side, a cheap detector is to compare
//! their responses: a mismatch proves at least one failed. The paper
//! evaluates this under the *pessimistic assumption* that all coincident
//! failures are identical and therefore invisible to comparison — the
//! observed score `11` (both failed) becomes `00` (both succeeded).
//!
//! In reality some coincident failures differ, in which case comparison
//! does flag the demand; [`BackToBackDetector::with_identical_probability`]
//! models that middle ground (probability that a coincident failure is
//! *identical*, hence masked).

use wsu_simcore::rng::StreamRng;

use crate::oracle::{DemandOutcome, FailureDetector};

/// Comparison-based detection over the two releases' responses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackToBackDetector {
    /// Probability that a coincident failure produces *identical* wrong
    /// responses (and is therefore masked). 1.0 is the paper's pessimistic
    /// assumption.
    p_identical: f64,
}

impl BackToBackDetector {
    /// The paper's pessimistic variant: every coincident failure is
    /// identical and masked.
    pub fn pessimistic() -> BackToBackDetector {
        BackToBackDetector { p_identical: 1.0 }
    }

    /// A variant where a coincident failure is masked only with
    /// probability `p_identical`.
    ///
    /// # Panics
    ///
    /// Panics if `p_identical` is outside `[0, 1]`.
    pub fn with_identical_probability(p_identical: f64) -> BackToBackDetector {
        assert!(
            (0.0..=1.0).contains(&p_identical),
            "identical probability {p_identical} not in [0, 1]"
        );
        BackToBackDetector { p_identical }
    }

    /// The masking probability.
    pub fn p_identical(self) -> f64 {
        self.p_identical
    }
}

impl FailureDetector for BackToBackDetector {
    fn name(&self) -> String {
        if self.p_identical == 1.0 {
            "back-to-back".to_owned()
        } else {
            format!("back-to-back(p_id={})", self.p_identical)
        }
    }

    fn observe(&mut self, truth: DemandOutcome, rng: &mut StreamRng) -> DemandOutcome {
        if truth.is_coincident() && rng.bernoulli(self.p_identical) {
            // Identical wrong answers compare equal: nothing to see.
            DemandOutcome::BOTH_OK
        } else {
            // A mismatch pinpoints the failing release(s): single failures
            // are caught by comparing against the other (correct) release,
            // and differing coincident failures are caught on both sides.
            truth
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pessimistic_masks_coincident_failures() {
        let mut det = BackToBackDetector::pessimistic();
        let mut rng = StreamRng::from_seed(1);
        assert_eq!(
            det.observe(DemandOutcome::BOTH_FAILED, &mut rng),
            DemandOutcome::BOTH_OK
        );
    }

    #[test]
    fn single_failures_pass_through() {
        let mut det = BackToBackDetector::pessimistic();
        let mut rng = StreamRng::from_seed(2);
        for truth in [
            DemandOutcome::new(true, false),
            DemandOutcome::new(false, true),
        ] {
            assert_eq!(det.observe(truth, &mut rng), truth);
        }
        assert_eq!(
            det.observe(DemandOutcome::BOTH_OK, &mut rng),
            DemandOutcome::BOTH_OK
        );
    }

    #[test]
    fn partial_masking_rate() {
        let mut det = BackToBackDetector::with_identical_probability(0.3);
        let mut rng = StreamRng::from_seed(3);
        let n = 100_000;
        let masked = (0..n)
            .filter(|_| det.observe(DemandOutcome::BOTH_FAILED, &mut rng) == DemandOutcome::BOTH_OK)
            .count();
        assert!((masked as f64 / n as f64 - 0.3).abs() < 0.01);
    }

    #[test]
    fn zero_identical_probability_detects_everything() {
        let mut det = BackToBackDetector::with_identical_probability(0.0);
        let mut rng = StreamRng::from_seed(4);
        assert_eq!(
            det.observe(DemandOutcome::BOTH_FAILED, &mut rng),
            DemandOutcome::BOTH_FAILED
        );
    }

    #[test]
    fn names() {
        assert_eq!(BackToBackDetector::pessimistic().name(), "back-to-back");
        assert_eq!(
            BackToBackDetector::with_identical_probability(0.5).name(),
            "back-to-back(p_id=0.5)"
        );
        assert_eq!(BackToBackDetector::pessimistic().p_identical(), 1.0);
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn rejects_bad_probability() {
        let _ = BackToBackDetector::with_identical_probability(2.0);
    }
}
