//! Property-based tests of the simulation substrate.

use proptest::prelude::*;

use wsu_simcore::dist::{Categorical, Exponential};
use wsu_simcore::engine::{Engine, Handler};
use wsu_simcore::rng::StreamRng;
use wsu_simcore::stats::{Histogram, Summary};
use wsu_simcore::time::{SimDuration, SimTime};

proptest! {
    /// Merging two summaries equals summarising the concatenated stream.
    #[test]
    fn summary_merge_is_concatenation(
        left in prop::collection::vec(-1e6f64..1e6, 0..100),
        right in prop::collection::vec(-1e6f64..1e6, 0..100),
    ) {
        let mut merged = Summary::new();
        for &x in &left {
            merged.record(x);
        }
        let mut other = Summary::new();
        for &x in &right {
            other.record(x);
        }
        merged.merge(&other);

        let mut whole = Summary::new();
        for &x in left.iter().chain(&right) {
            whole.record(x);
        }
        prop_assert_eq!(merged.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((merged.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((merged.variance() - whole.variance()).abs() < 1e-3);
            prop_assert_eq!(merged.min(), whole.min());
            prop_assert_eq!(merged.max(), whole.max());
        }
    }

    /// A histogram never loses observations.
    #[test]
    fn histogram_conserves_mass(
        values in prop::collection::vec(-10.0f64..20.0, 0..300),
        bins in 1usize..50,
    ) {
        let mut h = Histogram::new(0.0, 10.0, bins);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total() as usize, values.len());
        let binned: u64 = (0..h.bin_count()).map(|i| h.bin(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), h.total());
    }

    /// Exponential samples are non-negative and finite for any mean.
    #[test]
    fn exponential_samples_are_sane(mean in 1e-6f64..1e3, seed in any::<u64>()) {
        let exp = Exponential::with_mean(mean);
        let mut rng = StreamRng::from_seed(seed);
        for _ in 0..100 {
            let x = exp.sample(&mut rng);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }

    /// Categorical sampling always lands on a positive-probability class.
    #[test]
    fn categorical_respects_support(
        raw in prop::collection::vec(0.0f64..1.0, 2..8),
        seed in any::<u64>(),
    ) {
        let total: f64 = raw.iter().sum();
        prop_assume!(total > 1e-9);
        let probs: Vec<f64> = {
            let mut p: Vec<f64> = raw.iter().map(|w| w / total).collect();
            // Force exact normalisation on the last element.
            let head: f64 = p[..p.len() - 1].iter().sum();
            let last = p.len() - 1;
            p[last] = 1.0 - head;
            p
        };
        prop_assume!(probs.iter().all(|&p| p >= 0.0));
        let cat = Categorical::new(probs.clone());
        let mut rng = StreamRng::from_seed(seed);
        for _ in 0..50 {
            let i = cat.sample(&mut rng);
            prop_assert!(probs[i] > 0.0, "sampled zero-probability class {i}");
        }
    }

    /// The engine's clock is monotone for any schedule, and every event
    /// scheduled within the horizon is delivered.
    #[test]
    fn engine_clock_is_monotone(times in prop::collection::vec(0.0f64..1e3, 0..100)) {
        struct World {
            seen: Vec<f64>,
        }
        impl Handler<usize> for World {
            fn handle(&mut self, engine: &mut Engine<usize>, _e: usize) {
                self.seen.push(engine.now().as_secs());
            }
        }
        let mut engine = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_secs(t), i);
        }
        let mut world = World { seen: Vec::new() };
        engine.run(&mut world);
        prop_assert_eq!(world.seen.len(), times.len());
        for w in world.seen.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Durations: min/max/add behave like their f64 counterparts.
    #[test]
    fn duration_algebra(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let da = SimDuration::from_secs(a);
        let db = SimDuration::from_secs(b);
        prop_assert_eq!(da.min(db).as_secs(), a.min(b));
        prop_assert_eq!(da.max(db).as_secs(), a.max(b));
        prop_assert!(((da + db).as_secs() - (a + b)).abs() < 1e-9);
        let t = SimTime::from_secs(a) + db;
        prop_assert!((t.as_secs() - (a + b)).abs() < 1e-9);
    }

    /// Stream derivation: the same name yields identical streams, an
    /// index always changes them.
    #[test]
    fn stream_derivation_is_stable(seed in any::<u64>(), name in "[a-z]{1,12}") {
        use wsu_simcore::rng::MasterSeed;
        let master = MasterSeed::new(seed);
        let a: Vec<u64> = {
            let mut s = master.stream(&name);
            (0..4).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = master.stream(&name);
            (0..4).map(|_| s.next_u64()).collect()
        };
        prop_assert_eq!(&a, &b);
        let mut indexed = master.indexed_stream(&name, 1);
        let c: Vec<u64> = (0..4).map(|_| indexed.next_u64()).collect();
        prop_assert_ne!(a, c);
    }
}
