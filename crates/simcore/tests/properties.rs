//! Property-style tests of the simulation substrate.
//!
//! Originally written with `proptest`; rewritten as deterministic
//! seeded-loop checks (the build environment has no registry access, so
//! the workspace carries no external dev-dependencies). Each test draws
//! its cases from a [`StreamRng`], so the explored inputs are random in
//! shape but identical on every run.

use wsu_simcore::dist::{Categorical, Exponential};
use wsu_simcore::engine::{Engine, Handler};
use wsu_simcore::rng::{MasterSeed, StreamRng};
use wsu_simcore::stats::{Histogram, Summary};
use wsu_simcore::time::{SimDuration, SimTime};

const CASES: usize = 48;

fn rng_for(test: &str) -> StreamRng {
    MasterSeed::new(0x51_4D_43_5F_50_52_4F_50).stream(test)
}

fn f64_in(rng: &mut StreamRng, lo: f64, hi: f64) -> f64 {
    let unit = rng.next_u64() as f64 / u64::MAX as f64;
    lo + unit * (hi - lo)
}

fn vec_in(rng: &mut StreamRng, lo: f64, hi: f64, max_len: usize) -> Vec<f64> {
    let len = rng.next_below(max_len as u64 + 1) as usize;
    (0..len).map(|_| f64_in(rng, lo, hi)).collect()
}

/// Merging two summaries equals summarising the concatenated stream.
#[test]
fn summary_merge_is_concatenation() {
    let mut rng = rng_for("summary_merge");
    for _ in 0..CASES {
        let left = vec_in(&mut rng, -1e6, 1e6, 100);
        let right = vec_in(&mut rng, -1e6, 1e6, 100);
        let mut merged = Summary::new();
        for &x in &left {
            merged.record(x);
        }
        let mut other = Summary::new();
        for &x in &right {
            other.record(x);
        }
        merged.merge(&other);

        let mut whole = Summary::new();
        for &x in left.iter().chain(&right) {
            whole.record(x);
        }
        assert_eq!(merged.count(), whole.count());
        if whole.count() > 0 {
            assert!((merged.mean() - whole.mean()).abs() < 1e-6);
            assert!((merged.variance() - whole.variance()).abs() < 1e-3);
            assert_eq!(merged.min(), whole.min());
            assert_eq!(merged.max(), whole.max());
        }
    }
}

/// A histogram never loses observations.
#[test]
fn histogram_conserves_mass() {
    let mut rng = rng_for("histogram_mass");
    for _ in 0..CASES {
        let values = vec_in(&mut rng, -10.0, 20.0, 300);
        let bins = 1 + rng.next_below(49) as usize;
        let mut h = Histogram::new(0.0, 10.0, bins);
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.total() as usize, values.len());
        let binned: u64 = (0..h.bin_count()).map(|i| h.bin(i)).sum();
        assert_eq!(binned + h.underflow() + h.overflow(), h.total());
    }
}

/// Exponential samples are non-negative and finite for any mean.
#[test]
fn exponential_samples_are_sane() {
    let mut rng = rng_for("exponential_sane");
    for _ in 0..CASES {
        let mean = f64_in(&mut rng, 1e-6, 1e3);
        let exp = Exponential::with_mean(mean);
        let mut sample_rng = StreamRng::from_seed(rng.next_u64());
        for _ in 0..100 {
            let x = exp.sample(&mut sample_rng);
            assert!(x.is_finite() && x >= 0.0);
        }
    }
}

/// Categorical sampling always lands on a positive-probability class.
#[test]
fn categorical_respects_support() {
    let mut rng = rng_for("categorical_support");
    for _ in 0..CASES {
        let len = 2 + rng.next_below(6) as usize;
        let raw: Vec<f64> = (0..len).map(|_| f64_in(&mut rng, 0.0, 1.0)).collect();
        let total: f64 = raw.iter().sum();
        if total <= 1e-9 {
            continue;
        }
        let probs: Vec<f64> = {
            let mut p: Vec<f64> = raw.iter().map(|w| w / total).collect();
            // Force exact normalisation on the last element.
            let head: f64 = p[..p.len() - 1].iter().sum();
            let last = p.len() - 1;
            p[last] = 1.0 - head;
            p
        };
        if probs.iter().any(|&p| p < 0.0) {
            continue;
        }
        let cat = Categorical::new(probs.clone());
        let mut sample_rng = StreamRng::from_seed(rng.next_u64());
        for _ in 0..50 {
            let i = cat.sample(&mut sample_rng);
            assert!(probs[i] > 0.0, "sampled zero-probability class {i}");
        }
    }
}

/// The engine's clock is monotone for any schedule, and every event
/// scheduled within the horizon is delivered.
#[test]
fn engine_clock_is_monotone() {
    struct World {
        seen: Vec<f64>,
    }
    impl Handler<usize> for World {
        fn handle(&mut self, engine: &mut Engine<usize>, _e: usize) {
            self.seen.push(engine.now().as_secs());
        }
    }
    let mut rng = rng_for("engine_monotone");
    for _ in 0..CASES {
        let times = vec_in(&mut rng, 0.0, 1e3, 100);
        let mut engine = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_secs(t), i);
        }
        let mut world = World { seen: Vec::new() };
        engine.run(&mut world);
        assert_eq!(world.seen.len(), times.len());
        for w in world.seen.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}

/// Durations: min/max/add behave like their f64 counterparts.
#[test]
fn duration_algebra() {
    let mut rng = rng_for("duration_algebra");
    for _ in 0..CASES {
        let a = f64_in(&mut rng, 0.0, 1e6);
        let b = f64_in(&mut rng, 0.0, 1e6);
        let da = SimDuration::from_secs(a);
        let db = SimDuration::from_secs(b);
        assert_eq!(da.min(db).as_secs(), a.min(b));
        assert_eq!(da.max(db).as_secs(), a.max(b));
        assert!(((da + db).as_secs() - (a + b)).abs() < 1e-9);
        let t = SimTime::from_secs(a) + db;
        assert!((t.as_secs() - (a + b)).abs() < 1e-9);
    }
}

/// Stream derivation: the same name yields identical streams, an index
/// always changes them.
#[test]
fn stream_derivation_is_stable() {
    let mut rng = rng_for("stream_derivation");
    let names = [
        "a",
        "rng",
        "monitor",
        "adjudicator",
        "x1y2z3",
        "longstreamname",
    ];
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let name = names[rng.next_below(names.len() as u64) as usize];
        let master = MasterSeed::new(seed);
        let a: Vec<u64> = {
            let mut s = master.stream(name);
            (0..4).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = master.stream(name);
            (0..4).map(|_| s.next_u64()).collect()
        };
        assert_eq!(&a, &b);
        let mut indexed = master.indexed_stream(name, 1);
        let c: Vec<u64> = (0..4).map(|_| indexed.next_u64()).collect();
        assert_ne!(a, c);
    }
}
