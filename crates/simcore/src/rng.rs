//! Deterministic random-number streams.
//!
//! All randomness in the workspace flows through [`StreamRng`], a
//! xoshiro256** generator seeded via SplitMix64. Independent, *named*
//! streams are derived from a single [`MasterSeed`], so adding a new
//! consumer of randomness never perturbs the draws seen by existing
//! consumers — a property the experiment harness relies on for exact
//! reproducibility of every table and figure.
//!
//! # Example
//!
//! ```
//! use wsu_simcore::rng::MasterSeed;
//!
//! let seed = MasterSeed::new(42);
//! let mut outcomes = seed.stream("release-outcomes");
//! let mut timing = seed.stream("execution-times");
//! // Streams with different names are statistically independent...
//! assert_ne!(outcomes.next_u64(), timing.next_u64());
//! // ...and the same name always yields the same stream.
//! let mut again = seed.stream("release-outcomes");
//! let mut fresh = seed.stream("release-outcomes");
//! assert_eq!(again.next_u64(), fresh.next_u64());
//! ```

/// A 64-bit master seed from which named streams are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MasterSeed(u64);

impl MasterSeed {
    /// Creates a master seed from a 64-bit value.
    pub const fn new(seed: u64) -> MasterSeed {
        MasterSeed(seed)
    }

    /// Returns the raw seed value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Derives an independent stream identified by `name`.
    ///
    /// The same `(seed, name)` pair always produces the same stream.
    pub fn stream(self, name: &str) -> StreamRng {
        StreamRng::from_seed(self.derive(DOMAIN_NAMED, name, 0))
    }

    /// Derives an independent stream identified by `name` and an index.
    ///
    /// Useful for per-replica or per-run streams, e.g.
    /// `seed.indexed_stream("run", 3)`.
    pub fn indexed_stream(self, name: &str, index: u64) -> StreamRng {
        StreamRng::from_seed(self.derive(DOMAIN_INDEXED, name, index))
    }

    /// Derives a child seed by chaining every identifying word through
    /// the SplitMix64 finalizer (a bijective mixer).
    ///
    /// Each absorption step is injective in the absorbed word for a
    /// fixed running state, so distinct `(domain, name, index)` triples
    /// cannot collide by algebraic cancellation the way the previous
    /// plain-XOR composition could (`seed ^ h(a) ^ h(b)` is symmetric in
    /// its operands; any pair of names or a name and an index whose
    /// hashes XOR to the same value yielded the *same* stream).
    fn derive(self, domain: u64, name: &str, index: u64) -> u64 {
        let mut state = absorb(self.0, domain);
        state = absorb(state, fnv1a64(name.as_bytes()));
        absorb(state, index)
    }
}

/// Domain tag for plain named streams.
const DOMAIN_NAMED: u64 = 0x4e41_4d45_4453_5452; // "NAMEDSTR"
/// Domain tag for indexed streams.
const DOMAIN_INDEXED: u64 = 0x494e_4458_5354_5245; // "INDXSTRE"

/// Absorbs one word into a running derivation state.
///
/// Addition of the word (plus a golden-ratio increment so absorbing
/// zero still advances the state) followed by the bijective
/// [`mix64`] finalizer: injective in `word` for any fixed `state`.
fn absorb(state: u64, word: u64) -> u64 {
    mix64(state.wrapping_add(0x9e37_79b9_7f4a_7c15).wrapping_add(word))
}

/// The SplitMix64 output finalizer: a bijective 64-bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Default for MasterSeed {
    /// The default master seed used by the experiment harness.
    fn default() -> MasterSeed {
        MasterSeed(0x5DEE_CE66_D201_3B44)
    }
}

/// FNV-1a hash of a byte string; used only for stream derivation.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One step of the SplitMix64 generator; used to expand seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** random-number generator.
///
/// This is the only generator used in the workspace. It is fast, has a
/// 2^256−1 period, and passes BigCrush; determinism (not cryptographic
/// strength) is the requirement here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRng {
    s: [u64; 4],
}

impl StreamRng {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    pub fn from_seed(seed: u64) -> StreamRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not be seeded with all zeros; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        debug_assert!(s.iter().any(|&w| w != 0));
        StreamRng { s }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in the half-open interval `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high` or either bound is non-finite.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(
            low.is_finite() && high.is_finite() && low <= high,
            "invalid uniform bounds [{low}, {high})"
        );
        low + (high - low) * self.next_f64()
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below requires n > 0");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // Rejection zone: retry to stay exactly uniform.
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        self.next_f64() < p
    }

    /// Picks one index from `weights` with probability proportional to its
    /// weight.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "pick_weighted requires weights");
        let total: f64 = weights
            .iter()
            .inspect(|w| {
                assert!(w.is_finite() && **w >= 0.0, "invalid weight {w}");
            })
            .sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        // Floating-point round-off: return the last positive weight.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("at least one positive weight")
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick requires a non-empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }

    /// Forks an independent child generator.
    ///
    /// The child is seeded from the parent's output, so forking advances
    /// the parent stream by one draw.
    pub fn fork(&mut self) -> StreamRng {
        StreamRng::from_seed(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let seed = MasterSeed::new(7);
        let a: Vec<u64> = (0..8).map(|_| seed.stream("x").next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| seed.stream("x").next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let seed = MasterSeed::new(7);
        assert_ne!(seed.stream("a").next_u64(), seed.stream("b").next_u64());
    }

    #[test]
    fn indexed_streams_differ() {
        let seed = MasterSeed::new(7);
        let x = seed.indexed_stream("run", 0).next_u64();
        let y = seed.indexed_stream("run", 1).next_u64();
        assert_ne!(x, y);
    }

    /// Regression for the plain-XOR derivation: `seed ^ fnv(name)` let
    /// `MasterSeed::new(s).stream(a)` coincide exactly with
    /// `MasterSeed::new(s ^ fnv(a) ^ fnv(b)).stream(b)` — the two
    /// "independent" streams were byte-identical. The chained mix must
    /// separate them.
    #[test]
    fn xor_cancellation_between_named_streams_is_gone() {
        let h = |name: &str| fnv1a64(name.as_bytes());
        let s1 = 0xDEAD_BEEF_u64;
        let s2 = s1 ^ h("outcomes") ^ h("timing");
        let mut a = MasterSeed::new(s1).stream("outcomes");
        let mut b = MasterSeed::new(s2).stream("timing");
        assert!((0..8).any(|_| a.next_u64() != b.next_u64()));
    }

    /// Regression: under the XOR scheme an indexed stream collided with
    /// a named stream of a shifted master seed
    /// (`indexed_stream(n, i)` == `new(s ^ sm(i)).stream(n)` where `sm`
    /// is the old index expansion). The index must now be absorbed
    /// through the chain, not XORed on top.
    #[test]
    fn xor_cancellation_between_indexed_and_named_streams_is_gone() {
        // The old index expansion: splitmix64 over index + golden ratio.
        let old_sm = |index: u64| {
            let mut state = index.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix64(&mut state)
        };
        let s = 0x1234_5678_9abc_def0_u64;
        for index in [0u64, 1, 2, 41] {
            let mut a = MasterSeed::new(s).indexed_stream("run", index);
            let mut b = MasterSeed::new(s ^ old_sm(index)).stream("run");
            assert!((0..8).any(|_| a.next_u64() != b.next_u64()));
        }
    }

    /// `(name, index)` pairs, plain names and nearby master seeds must
    /// all produce pairwise-distinct streams: a broad independence sweep
    /// over a few thousand derivations.
    #[test]
    fn derivation_sweep_has_no_collisions() {
        use std::collections::HashSet;
        let names = ["run", "plan", "midsim/middleware", "capacity/plan", ""];
        let mut first_draws = HashSet::new();
        let mut total = 0usize;
        for seed_offset in 0..3u64 {
            let seed = MasterSeed::new(0x5DEE_CE66_D201_3B44 ^ seed_offset);
            for name in names {
                assert!(first_draws.insert(seed.stream(name).next_u64()));
                total += 1;
                for index in 0..256u64 {
                    assert!(
                        first_draws.insert(seed.indexed_stream(name, index).next_u64()),
                        "collision at seed {seed_offset} name {name:?} index {index}"
                    );
                    total += 1;
                }
            }
        }
        assert_eq!(first_draws.len(), total);
    }

    /// The derivation is not the raw XOR of seed and name hash.
    #[test]
    fn derivation_is_not_plain_xor() {
        let seed = MasterSeed::new(99);
        let xor_seeded = StreamRng::from_seed(99 ^ fnv1a64(b"x")).next_u64();
        assert_ne!(seed.stream("x").next_u64(), xor_seeded);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = StreamRng::from_seed(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_mean_is_about_half() {
        let mut rng = StreamRng::from_seed(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut rng = StreamRng::from_seed(3);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.next_below(5) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut rng = StreamRng::from_seed(4);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StreamRng::from_seed(5);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }

    #[test]
    fn pick_weighted_respects_weights() {
        let mut rng = StreamRng::from_seed(6);
        let weights = [0.7, 0.15, 0.15];
        let mut counts = [0u32; 3];
        for _ in 0..100_000 {
            counts[rng.pick_weighted(&weights)] += 1;
        }
        assert!((counts[0] as f64 / 100_000.0 - 0.7).abs() < 0.01);
        assert!((counts[1] as f64 / 100_000.0 - 0.15).abs() < 0.01);
    }

    #[test]
    fn pick_weighted_skips_zero_weights() {
        let mut rng = StreamRng::from_seed(7);
        for _ in 0..1000 {
            assert_eq!(rng.pick_weighted(&[0.0, 1.0, 0.0]), 1);
        }
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut rng = StreamRng::from_seed(8);
        let mut child = rng.fork();
        assert_ne!(rng.next_u64(), child.next_u64());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bernoulli_rejects_out_of_range() {
        StreamRng::from_seed(1).bernoulli(1.5);
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn pick_weighted_rejects_all_zero() {
        StreamRng::from_seed(1).pick_weighted(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn next_below_rejects_zero() {
        StreamRng::from_seed(1).next_below(0);
    }

    /// Reference vector for xoshiro256** seeded via SplitMix64(0):
    /// guards against accidental algorithm changes.
    #[test]
    fn xoshiro_reference_vector_is_stable() {
        let mut rng = StreamRng::from_seed(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = StreamRng::from_seed(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        // All four outputs distinct (overwhelming probability for a healthy
        // generator, and deterministic for this fixed seed).
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(first[i], first[j]);
            }
        }
    }
}
