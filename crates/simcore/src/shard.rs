//! Deterministic intra-replication parallelism: per-core shards.
//!
//! [`par`](crate::par) fans independent *replications* across cores; a
//! single replication is still serial. This module shards the inside of
//! one run — the engine/queue state itself — into K per-core shards
//! while keeping every observable output **byte-identical at any shard
//! count** (the `--jobs` contract, one level down).
//!
//! Two executors are provided, matching the two shapes of hot loop in
//! this workspace:
//!
//! 1. [`run_epochs`] — conservative parallel discrete-event simulation.
//!    Each shard owns a private calendar queue (via
//!    [`Engine::run_window`](crate::engine::Engine::run_window)), RNG
//!    streams, scratch buffers and metric sinks, and advances through
//!    virtual time in fixed *epochs* (windows one calendar-bucket wide
//!    by convention) separated by a barrier. Events destined for
//!    another shard are staged in a per-`(src, dst)` [`Outbox`] lane
//!    and delivered at the epoch boundary in `(epoch, src, seq)` order,
//!    so the destination shard enqueues them identically however many
//!    shards the sources were spread over. The scheme is correct when
//!    every cross-shard event carries at least one epoch of lookahead
//!    (delay ≥ epoch width), the classic conservative-PDES constraint.
//!
//! 2. [`shard_pipeline`] — prepare/commit two-phase execution for the
//!    closed demand loop. Demands are hash-partitioned by demand id
//!    (`id % K`); workers run the RNG-free *prepare* phase in parallel
//!    while a single committer replays RNG draws, float accumulation
//!    and trace emission **in demand-id order**, so the sequential
//!    streams (middleware RNG, monitor RNG, `Summary` sums) see the
//!    exact same draw/accumulate order as a serial run.
//!
//! # Determinism contract
//!
//! For any shard counts `a` and `b`, the same world partitioned `a`
//! ways and `b` ways produces identical merged tables, `.prom`
//! snapshots and JSONL traces, provided each logical entity derives its
//! randomness from its own stable id (e.g.
//! [`MasterSeed::indexed_stream`](crate::rng::MasterSeed::indexed_stream))
//! and cross-shard sends respect the lookahead constraint. Thread
//! scheduling affects wall-clock only.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Condvar, Mutex};
use std::thread;

use crate::rng::{MasterSeed, StreamRng};

/// Shard count for intra-replication parallelism.
///
/// The knob mirrors [`Jobs`](crate::par::Jobs): `--shards 1` is the
/// serial engine, `--shards 0`/unset means one shard per hardware
/// thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shards(NonZeroUsize);

impl Shards {
    /// Exactly one shard: the serial engine, no threads spawned.
    pub const fn serial() -> Shards {
        Shards(NonZeroUsize::MIN)
    }

    /// `n` shards; `0` is clamped to 1.
    pub fn new(n: usize) -> Shards {
        Shards(NonZeroUsize::new(n).unwrap_or(NonZeroUsize::MIN))
    }

    /// One shard per available hardware thread (the `--shards` default
    /// when a bare `--shards` is given).
    pub fn auto() -> Shards {
        Shards(thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// `Some(n)` → `n` shards (0 clamped to 1); `None` → [`Shards::serial`].
    ///
    /// Unlike [`Jobs`](crate::par::Jobs), the unset default is *serial*:
    /// sharding changes which thread touches which cache lines, so it
    /// is opt-in per invocation.
    pub fn from_request(requested: Option<usize>) -> Shards {
        match requested {
            Some(0) => Shards::auto(),
            Some(n) => Shards::new(n),
            None => Shards::serial(),
        }
    }

    /// The shard count.
    pub fn get(self) -> usize {
        self.0.get()
    }

    /// The shard that owns logical entity `id` under the workspace's
    /// hash partition (`id % K`). Demands, consumers and fleet members
    /// are all partitioned this way so ownership is derivable from the
    /// id alone, on any shard, without a directory.
    pub fn owner_of(self, id: u64) -> usize {
        (id % self.get() as u64) as usize
    }
}

impl Default for Shards {
    /// Defaults to [`Shards::serial`].
    fn default() -> Shards {
        Shards::serial()
    }
}

/// The per-shard RNG stream named by the sharding convention:
/// `MasterSeed::indexed_stream("shard", k)`. Use it only for
/// shard-local scratch randomness that never reaches an output; any
/// draw that affects output must come from an entity-id-derived stream
/// or the output would depend on the partition.
pub fn shard_stream(seed: &MasterSeed, shard: usize) -> StreamRng {
    seed.indexed_stream("shard", shard as u64)
}

/// Cross-shard messages staged by one shard during one epoch.
///
/// One FIFO lane per destination; the epoch runner concatenates lanes
/// addressed to each destination in source-shard order, so delivery is
/// in `(epoch, src, seq)` order — independent of thread scheduling.
#[derive(Debug)]
pub struct Outbox<M> {
    lanes: Vec<Vec<M>>,
}

impl<M> Outbox<M> {
    /// An outbox with one empty lane per destination shard.
    pub fn new(shards: usize) -> Outbox<M> {
        Outbox {
            lanes: (0..shards).map(|_| Vec::new()).collect(),
        }
    }

    /// Stages `msg` for delivery to shard `dst` at the next epoch
    /// boundary. Messages to the same destination keep FIFO order.
    pub fn send(&mut self, dst: usize, msg: M) {
        self.lanes[dst].push(msg);
    }

    /// Number of destination shards.
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// Total messages staged across all lanes.
    pub fn staged(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum()
    }

    fn take_lanes(&mut self) -> Vec<Vec<M>> {
        std::mem::take(&mut self.lanes)
    }
}

/// One shard of an epoch-synchronized world.
///
/// Implementations own everything their shard touches: calendar queue,
/// RNG streams, scratch buffers, metric/recorder sinks. The runner only
/// moves messages and decides when the whole fleet is quiescent.
pub trait ShardWorld {
    /// A cross-shard event. Must carry an absolute due time with at
    /// least one epoch of lookahead; the receiving shard enqueues it
    /// before running the next window.
    type Msg: Send;

    /// Advances this shard through epoch `epoch` (the shard maps epoch
    /// index to its virtual-time window). `inbox` holds messages staged
    /// for this shard during the previous epoch, already in
    /// `(src, seq)` order; `outbox` stages messages for other shards
    /// (sending to your own shard index is allowed and delivers next
    /// epoch like any other lane). Returns `true` while this shard
    /// still has pending local work.
    fn epoch(
        &mut self,
        epoch: u64,
        inbox: Vec<(usize, Self::Msg)>,
        outbox: &mut Outbox<Self::Msg>,
    ) -> bool;
}

impl<W: ShardWorld + ?Sized> ShardWorld for &mut W {
    type Msg = W::Msg;

    fn epoch(
        &mut self,
        epoch: u64,
        inbox: Vec<(usize, Self::Msg)>,
        outbox: &mut Outbox<Self::Msg>,
    ) -> bool {
        (**self).epoch(epoch, inbox, outbox)
    }
}

/// What one shard deposits at the barrier each epoch.
struct EpochPost<M> {
    lanes: Vec<Vec<M>>,
    pending: bool,
}

/// Runs every shard in `worlds` to global quiescence under the epoch
/// barrier, returning the number of epochs executed.
///
/// Each epoch: all shards run [`ShardWorld::epoch`] concurrently, hit a
/// barrier, the barrier leader redistributes every staged lane to its
/// destination inbox (in source order, preserving per-lane FIFO — the
/// `(epoch, src, seq)` drain order), and checks termination: the run
/// ends after an epoch in which no shard has pending work and no
/// message was staged. With one shard everything runs inline on the
/// calling thread — byte-for-byte the serial engine.
///
/// # Panics
///
/// Propagates a panic from any shard (the scope joins all workers).
pub fn run_epochs<W: ShardWorld + Send>(worlds: &mut [W]) -> u64 {
    let k = worlds.len();
    assert!(k > 0, "run_epochs needs at least one shard");
    // Hand each scoped thread its `&mut W` through a take-once slot;
    // the blanket `ShardWorld for &mut W` impl does the rest.
    let slots: Vec<Mutex<Option<&mut W>>> =
        worlds.iter_mut().map(|w| Mutex::new(Some(w))).collect();
    let (_, epochs) = run_epochs_local(
        Shards::new(k),
        |shard| {
            slots[shard]
                .lock()
                .expect("world slot")
                .take()
                .expect("each shard's world is taken exactly once")
        },
        |_, _| (),
    );
    epochs
}

/// [`run_epochs`] for worlds that cannot cross threads.
///
/// `build(shard)` constructs shard `shard`'s world *on the thread that
/// will run it*, and `finish(shard, world)` consumes the world there
/// once the fleet is quiescent, returning a `Send` summary. Because the
/// world itself never changes threads, `W` needs no `Send` bound — this
/// is the blueprint idiom (`ServeSpec::worker`) applied to the epoch
/// runner, and it is how middleware worlds (whose endpoints hand out
/// `Rc`-pooled envelopes) shard across cores.
///
/// Returns the per-shard summaries in shard order plus the number of
/// epochs executed. With one shard everything runs inline on the
/// calling thread — byte-for-byte the serial engine.
///
/// # Panics
///
/// Propagates a panic from any shard (the scope joins all workers).
pub fn run_epochs_local<W, F, G, R>(shards: Shards, build: F, finish: G) -> (Vec<R>, u64)
where
    W: ShardWorld,
    F: Fn(usize) -> W + Sync,
    G: Fn(usize, W) -> R + Sync,
    R: Send,
{
    let k = shards.get();
    if k == 1 {
        let mut world = build(0);
        let mut inbox: Vec<(usize, W::Msg)> = Vec::new();
        let mut epoch = 0u64;
        loop {
            let mut outbox = Outbox::new(1);
            let pending = world.epoch(epoch, std::mem::take(&mut inbox), &mut outbox);
            let mut lanes = outbox.take_lanes();
            inbox = lanes.remove(0).into_iter().map(|m| (0usize, m)).collect();
            epoch += 1;
            if !pending && inbox.is_empty() {
                return (vec![finish(0, world)], epoch);
            }
        }
    }

    type Inbox<M> = Mutex<Vec<(usize, M)>>;
    let posts: Vec<Mutex<Option<EpochPost<W::Msg>>>> = (0..k).map(|_| Mutex::new(None)).collect();
    let inboxes: Vec<Inbox<W::Msg>> = (0..k).map(|_| Mutex::new(Vec::new())).collect();
    let results: Vec<Mutex<Option<R>>> = (0..k).map(|_| Mutex::new(None)).collect();
    let barrier = Barrier::new(k);
    let stop = AtomicBool::new(false);
    let epochs = Mutex::new(0u64);

    thread::scope(|scope| {
        for shard in 0..k {
            let posts = &posts;
            let inboxes = &inboxes;
            let results = &results;
            let barrier = &barrier;
            let stop = &stop;
            let epochs = &epochs;
            let build = &build;
            let finish = &finish;
            scope.spawn(move || {
                let mut world = build(shard);
                let mut epoch = 0u64;
                loop {
                    let inbox = std::mem::take(&mut *inboxes[shard].lock().expect("inbox lock"));
                    let mut outbox = Outbox::new(k);
                    let pending = world.epoch(epoch, inbox, &mut outbox);
                    *posts[shard].lock().expect("post lock") = Some(EpochPost {
                        lanes: outbox.take_lanes(),
                        pending,
                    });
                    epoch += 1;
                    if barrier.wait().is_leader() {
                        // Redistribute: destination inboxes are filled in
                        // source order, each lane FIFO — (epoch, src, seq).
                        let mut any_pending = false;
                        let mut any_message = false;
                        for (src, slot) in posts.iter().enumerate() {
                            let post = slot
                                .lock()
                                .expect("post lock")
                                .take()
                                .expect("every shard posted this epoch");
                            any_pending |= post.pending;
                            for (dst, lane) in post.lanes.into_iter().enumerate() {
                                if lane.is_empty() {
                                    continue;
                                }
                                any_message = true;
                                inboxes[dst]
                                    .lock()
                                    .expect("inbox lock")
                                    .extend(lane.into_iter().map(|m| (src, m)));
                            }
                        }
                        stop.store(!any_pending && !any_message, Ordering::Release);
                        *epochs.lock().expect("epoch counter") = epoch;
                    }
                    // Second barrier: nobody starts the next epoch (or
                    // exits) until the leader finished redistributing.
                    barrier.wait();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                }
                *results[shard].lock().expect("result slot") = Some(finish(shard, world));
            });
        }
    });
    let total = *epochs.lock().expect("epoch counter");
    let out = results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result lock")
                .expect("every shard deposited a summary")
        })
        .collect();
    (out, total)
}

/// Bounded lookahead of the prepare/commit pipeline: how far (in
/// demand ids) workers may run ahead of the committer. Large enough to
/// hide commit latency, small enough to bound memory.
const PIPELINE_WINDOW: usize = 256;

/// Slot ring shared between prepare workers and the committer.
struct Ring<P> {
    slots: Vec<Option<P>>,
    /// Items `0..committed` have been handed to the committer.
    committed: usize,
    /// Prepare workers still running.
    workers: usize,
    /// Set when the committer is gone (normally or by panic) so
    /// workers never block on a dead consumer.
    aborted: bool,
}

/// Decrements the live-worker count on scope exit — including panic —
/// so the committer can distinguish "not yet prepared" from "never
/// coming" instead of deadlocking.
struct WorkerGuard<'a, P> {
    ring: &'a Mutex<Ring<P>>,
    filled: &'a Condvar,
}

impl<P> Drop for WorkerGuard<'_, P> {
    fn drop(&mut self) {
        let mut g = match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        g.workers -= 1;
        drop(g);
        self.filled.notify_all();
    }
}

/// Unblocks prepare workers when the committer exits — normally or by
/// panic — so a failing `commit` propagates instead of deadlocking.
struct CommitterGuard<'a, P> {
    ring: &'a Mutex<Ring<P>>,
    drained: &'a Condvar,
}

impl<P> Drop for CommitterGuard<'_, P> {
    fn drop(&mut self) {
        let mut g = match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        g.aborted = true;
        drop(g);
        self.drained.notify_all();
    }
}

/// Two-phase prepare/commit execution of `count` items on `shards`
/// workers, committing strictly in item order.
///
/// `prepare(i)` runs in parallel — items are hash-partitioned across
/// workers by `i % K`, the same partition [`Shards::owner_of`] gives
/// for demand ids — and must be deterministic in `i` and immutable
/// captures (in the middleware loop: everything *except* the RNG draws,
/// which live in commit). `commit(i, prepared)` runs on the calling
/// thread for `i = 0, 1, …, count-1` in exactly that order, so
/// sequential state (RNG streams, float accumulators, trace writers)
/// observes the same history as a serial run. Workers run at most
/// [`PIPELINE_WINDOW`] items ahead of the committer.
///
/// With one shard (or fewer than two items) everything runs inline:
/// `commit(i, prepare(i))` in a plain loop — the serial engine.
///
/// # Panics
///
/// Propagates a panic from `prepare` or `commit` (no deadlock: each
/// side detects the other's death).
pub fn shard_pipeline<P, F, C>(shards: Shards, count: usize, prepare: F, mut commit: C)
where
    P: Send,
    F: Fn(usize) -> P + Sync,
    C: FnMut(usize, P),
{
    let k = shards.get();
    if k <= 1 || count <= 1 {
        for i in 0..count {
            commit(i, prepare(i));
        }
        return;
    }
    let ring = Mutex::new(Ring {
        slots: (0..PIPELINE_WINDOW).map(|_| None).collect(),
        committed: 0,
        workers: k,
        aborted: false,
    });
    let filled = Condvar::new();
    let drained = Condvar::new();
    thread::scope(|scope| {
        for w in 0..k {
            let ring = &ring;
            let filled = &filled;
            let drained = &drained;
            let prepare = &prepare;
            scope.spawn(move || {
                let _guard = WorkerGuard { ring, filled };
                let mut i = w;
                while i < count {
                    let item = prepare(i);
                    let mut g = ring.lock().expect("pipeline ring");
                    while !g.aborted && i >= g.committed + PIPELINE_WINDOW {
                        g = drained.wait(g).expect("pipeline ring");
                    }
                    if g.aborted {
                        return;
                    }
                    g.slots[i % PIPELINE_WINDOW] = Some(item);
                    drop(g);
                    filled.notify_all();
                    i += k;
                }
            });
        }
        // The committer runs here on the calling thread, inside the
        // scope, concurrently with the workers it feeds from.
        let _guard = CommitterGuard {
            ring: &ring,
            drained: &drained,
        };
        for i in 0..count {
            let mut g = ring.lock().expect("pipeline ring");
            let item = loop {
                if let Some(item) = g.slots[i % PIPELINE_WINDOW].take() {
                    break item;
                }
                assert!(
                    g.workers > 0,
                    "prepare worker for item {i} died before filling its slot"
                );
                g = filled.wait(g).expect("pipeline ring");
            };
            g.committed = i + 1;
            drop(g);
            drained.notify_all();
            commit(i, item);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Handler};
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn shards_constructors() {
        assert_eq!(Shards::serial().get(), 1);
        assert_eq!(Shards::new(0).get(), 1);
        assert_eq!(Shards::new(6).get(), 6);
        assert_eq!(Shards::from_request(Some(3)).get(), 3);
        assert_eq!(Shards::from_request(None).get(), 1);
        assert!(Shards::from_request(Some(0)).get() >= 1);
        assert_eq!(Shards::default().get(), 1);
        assert!(Shards::auto().get() >= 1);
        assert_eq!(Shards::new(4).owner_of(10), 2);
        assert_eq!(Shards::serial().owner_of(10), 0);
    }

    #[test]
    fn shard_stream_matches_indexed_stream() {
        let seed = MasterSeed::new(9);
        assert_eq!(
            shard_stream(&seed, 3).next_u64(),
            seed.indexed_stream("shard", 3).next_u64()
        );
    }

    #[test]
    fn outbox_lanes_keep_fifo() {
        let mut outbox: Outbox<u32> = Outbox::new(2);
        outbox.send(1, 10);
        outbox.send(0, 20);
        outbox.send(1, 30);
        assert_eq!(outbox.shards(), 2);
        assert_eq!(outbox.staged(), 3);
        let lanes = outbox.take_lanes();
        assert_eq!(lanes, vec![vec![20], vec![10, 30]]);
    }

    #[test]
    fn pipeline_commits_in_order_for_any_shard_count() {
        let serial: Vec<(usize, u64)> = {
            let mut out = Vec::new();
            shard_pipeline(
                Shards::serial(),
                500,
                |i| (i as u64).wrapping_mul(0x9E37_79B9),
                |i, p| out.push((i, p)),
            );
            out
        };
        for k in [2, 3, 4, 8] {
            let mut out = Vec::new();
            shard_pipeline(
                Shards::new(k),
                500,
                |i| (i as u64).wrapping_mul(0x9E37_79B9),
                |i, p| out.push((i, p)),
            );
            assert_eq!(out, serial, "shards {k}");
        }
    }

    #[test]
    fn pipeline_sequential_commit_state_is_partition_independent() {
        // The committer threads a sequential RNG through the commits —
        // exactly the middleware/monitor stream shape. Identical draws
        // at any K proves the draw order is partition-independent.
        let run = |k: usize| {
            let seed = MasterSeed::new(77);
            let mut rng = seed.stream("commit");
            let mut acc = Vec::new();
            shard_pipeline(
                Shards::new(k),
                300,
                |i| i as u64 + 1,
                |_, p| acc.push(rng.next_below(p)),
            );
            acc
        };
        let serial = run(1);
        for k in [2, 4, 8] {
            assert_eq!(run(k), serial, "shards {k}");
        }
    }

    #[test]
    fn pipeline_handles_tiny_and_empty_counts() {
        let mut out = Vec::new();
        shard_pipeline(Shards::new(4), 0, |i| i, |i, p| out.push((i, p)));
        assert!(out.is_empty());
        shard_pipeline(Shards::new(4), 1, |i| i + 7, |i, p| out.push((i, p)));
        assert_eq!(out, vec![(0, 7)]);
        // More shards than items.
        out.clear();
        shard_pipeline(Shards::new(16), 3, |i| i, |i, p| out.push((i, p)));
        assert_eq!(out, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn pipeline_wraps_the_window_many_times() {
        let count = PIPELINE_WINDOW * 5 + 13;
        let mut sum = 0u64;
        let mut last = None;
        shard_pipeline(
            Shards::new(3),
            count,
            |i| i as u64,
            |i, p| {
                assert_eq!(i as u64, p);
                assert_eq!(last.map_or(0, |l: usize| l + 1), i, "order");
                last = Some(i);
                sum += p;
            },
        );
        assert_eq!(sum, (count as u64 - 1) * count as u64 / 2);
    }

    #[test]
    fn pipeline_prepare_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            shard_pipeline(
                Shards::new(2),
                64,
                |i| {
                    if i == 33 {
                        panic!("prepare 33 exploded");
                    }
                    i
                },
                |_, _| {},
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn pipeline_commit_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            shard_pipeline(
                Shards::new(4),
                10_000,
                |i| i,
                |i, _| {
                    if i == 5 {
                        panic!("commit 5 exploded");
                    }
                },
            )
        });
        assert!(result.is_err());
    }

    /// A ring of logical counters hash-partitioned across shards. Each
    /// hop event bumps a counter and forwards to `(id + 3) % N` one
    /// epoch later (the lookahead constraint), logging `(time, id)`.
    /// The merged, sorted logs must be identical for every K.
    const EPOCH_SECS: f64 = 1.0;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Hop {
        due: SimTime,
        id: u64,
        ttl: u32,
    }

    struct RingShard {
        shard: usize,
        shards: Shards,
        entities: u64,
        engine: Engine<Hop>,
        log: Vec<(u64, u64)>,
        staged: Vec<Hop>,
    }

    impl RingShard {
        fn new(shard: usize, shards: Shards, entities: u64) -> RingShard {
            RingShard {
                shard,
                shards,
                entities,
                engine: Engine::new(),
                log: Vec::new(),
                staged: Vec::new(),
            }
        }
    }

    struct HopWorld<'a> {
        shard: usize,
        shards: Shards,
        entities: u64,
        log: &'a mut Vec<(u64, u64)>,
        staged: &'a mut Vec<Hop>,
    }

    impl Handler<Hop> for HopWorld<'_> {
        fn handle(&mut self, engine: &mut Engine<Hop>, hop: Hop) {
            self.log.push((engine.now().as_secs() as u64, hop.id));
            if hop.ttl == 0 {
                return;
            }
            let next_id = (hop.id + 3) % self.entities;
            let next = Hop {
                due: engine.now() + SimDuration::from_secs(EPOCH_SECS),
                id: next_id,
                ttl: hop.ttl - 1,
            };
            if self.shards.owner_of(next_id) == self.shard {
                engine.schedule_at(next.due, next);
            } else {
                self.staged.push(next);
            }
        }
    }

    impl ShardWorld for RingShard {
        type Msg = Hop;

        fn epoch(
            &mut self,
            epoch: u64,
            inbox: Vec<(usize, Hop)>,
            outbox: &mut Outbox<Hop>,
        ) -> bool {
            let window_end = SimTime::from_secs((epoch + 1) as f64 * EPOCH_SECS);
            for (_src, hop) in inbox {
                self.engine.schedule_at(hop.due, hop);
            }
            let mut world = HopWorld {
                shard: self.shard,
                shards: self.shards,
                entities: self.entities,
                log: &mut self.log,
                staged: &mut self.staged,
            };
            self.engine.run_window(window_end, &mut world);
            for hop in self.staged.drain(..) {
                outbox.send(self.shards.owner_of(hop.id), hop);
            }
            self.engine.pending() > 0
        }
    }

    fn run_ring(k: usize) -> Vec<(u64, u64)> {
        let shards = Shards::new(k);
        let entities = 10u64;
        let mut worlds: Vec<RingShard> = (0..k)
            .map(|s| RingShard::new(s, shards, entities))
            .collect();
        // Seed: every entity starts one token at t = 0.5 with ttl 20.
        for id in 0..entities {
            let owner = shards.owner_of(id);
            let hop = Hop {
                due: SimTime::from_secs(0.5),
                id,
                ttl: 20,
            };
            worlds[owner].engine.schedule_at(hop.due, hop);
        }
        let epochs = run_epochs(&mut worlds);
        assert!(epochs >= 20, "token ttl spans at least 20 epochs");
        let mut log: Vec<(u64, u64)> = worlds.into_iter().flat_map(|w| w.log).collect();
        log.sort_unstable();
        log
    }

    #[test]
    fn epoch_runner_is_shard_count_invariant() {
        let serial = run_ring(1);
        assert_eq!(serial.len(), 10 * 21);
        for k in [2, 3, 4, 8] {
            assert_eq!(run_ring(k), serial, "shards {k}");
        }
    }

    #[test]
    fn epoch_inbox_is_in_src_seq_order() {
        // Two sender shards both message shard 0; its inbox must list
        // shard-0-sourced messages first, each lane FIFO.
        struct Sender {
            shard: usize,
            seen: Vec<(usize, u32)>,
            rounds: u32,
        }
        impl ShardWorld for Sender {
            type Msg = u32;
            fn epoch(
                &mut self,
                epoch: u64,
                inbox: Vec<(usize, u32)>,
                outbox: &mut Outbox<u32>,
            ) -> bool {
                self.seen.extend(inbox);
                if epoch == 0 {
                    outbox.send(0, (self.shard as u32) * 10);
                    outbox.send(0, (self.shard as u32) * 10 + 1);
                }
                self.rounds += 1;
                false
            }
        }
        let mut worlds: Vec<Sender> = (0..3)
            .map(|shard| Sender {
                shard,
                seen: Vec::new(),
                rounds: 0,
            })
            .collect();
        run_epochs(&mut worlds);
        assert_eq!(
            worlds[0].seen,
            vec![(0, 0), (0, 1), (1, 10), (1, 11), (2, 20), (2, 21)]
        );
        assert!(worlds[1].seen.is_empty());
    }

    /// The whole point of `run_epochs_local`: worlds holding non-`Send`
    /// state (here an `Rc`, like the middleware's pooled envelopes) can
    /// still shard, because each world is built, run and consumed on
    /// its own thread. Summaries come back in shard order.
    #[test]
    fn local_runner_shards_non_send_worlds() {
        use std::rc::Rc;

        struct RcWorld {
            shard: usize,
            tally: Rc<std::cell::Cell<u64>>,
        }
        impl ShardWorld for RcWorld {
            type Msg = u64;
            fn epoch(
                &mut self,
                epoch: u64,
                inbox: Vec<(usize, u64)>,
                outbox: &mut Outbox<u64>,
            ) -> bool {
                for (_src, m) in inbox {
                    self.tally.set(self.tally.get() + m);
                }
                if epoch == 0 {
                    // Everyone chips in to shard 0's tally next epoch.
                    outbox.send(0, self.shard as u64 + 1);
                }
                false
            }
        }

        let (sums, epochs) = run_epochs_local(
            Shards::new(4),
            |shard| RcWorld {
                shard,
                tally: Rc::new(std::cell::Cell::new(100 * shard as u64)),
            },
            |shard, world| (shard, world.tally.get()),
        );
        assert!(epochs >= 2);
        assert_eq!(sums, vec![(0, 1 + 2 + 3 + 4), (1, 100), (2, 200), (3, 300)]);
    }

    #[test]
    fn single_shard_self_send_delivers_next_epoch() {
        struct SelfSend {
            got: Vec<u64>,
        }
        impl ShardWorld for SelfSend {
            type Msg = u64;
            fn epoch(
                &mut self,
                epoch: u64,
                inbox: Vec<(usize, u64)>,
                outbox: &mut Outbox<u64>,
            ) -> bool {
                for (src, m) in inbox {
                    assert_eq!(src, 0);
                    self.got.push(m);
                }
                if epoch < 3 {
                    outbox.send(0, epoch);
                }
                false
            }
        }
        let mut worlds = vec![SelfSend { got: Vec::new() }];
        let epochs = run_epochs(&mut worlds);
        assert_eq!(worlds[0].got, vec![0, 1, 2]);
        assert!(epochs >= 4);
    }
}
