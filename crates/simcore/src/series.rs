//! Checkpointed series for figure-style outputs.
//!
//! Figures 7 and 8 of the paper plot posterior percentiles against the
//! number of demands. [`Series`] is a named sequence of `(x, y)` points and
//! [`SeriesSet`] groups the several curves of one figure, with simple text
//! rendering used by the experiment binaries.

use std::fmt;

/// One named curve: a sequence of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given display name.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is not finite.
    pub fn push(&mut self, x: f64, y: f64) {
        assert!(
            x.is_finite() && y.is_finite(),
            "non-finite point ({x}, {y})"
        );
        self.points.push((x, y));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if no points are recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last point, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }

    /// Linear interpolation of `y` at `x`; clamps outside the recorded
    /// range. Returns `None` for an empty series.
    ///
    /// Points must have been pushed with non-decreasing `x`.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        let first = self.points.first()?;
        if x <= first.0 {
            return Some(first.1);
        }
        let last = self.points.last()?;
        if x >= last.0 {
            return Some(last.1);
        }
        let idx = self.points.partition_point(|&(px, _)| px <= x);
        let (x0, y0) = self.points[idx - 1];
        let (x1, y1) = self.points[idx];
        if x1 == x0 {
            return Some(y1);
        }
        Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
    }

    /// First `x` at which `y` drops to or below `threshold`, using the
    /// recorded points (no interpolation). `None` if it never does.
    pub fn first_x_at_or_below(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, y)| y <= threshold)
            .map(|&(x, _)| x)
    }
}

/// A group of curves sharing an x-axis — one figure.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SeriesSet {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

impl SeriesSet {
    /// Creates a figure with a title and axis labels.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> SeriesSet {
        SeriesSet {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// The figure title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Adds a curve.
    pub fn add(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// The curves.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Looks up a curve by name.
    pub fn by_name(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// Renders the figure as a tab-separated table: header row with series
    /// names, one row per x value (x values taken from the first series).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&self.x_label);
        for s in &self.series {
            out.push('\t');
            out.push_str(s.name());
        }
        out.push('\n');
        let Some(first) = self.series.first() else {
            return out;
        };
        for &(x, _) in first.points() {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                let y = s.interpolate(x).unwrap_or(f64::NAN);
                out.push_str(&format!("\t{y:.6e}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for SeriesSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_tsv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Series {
        let mut s = Series::new("ramp");
        for i in 0..=10 {
            s.push(i as f64, 10.0 - i as f64);
        }
        s
    }

    #[test]
    fn push_and_query() {
        let s = ramp();
        assert_eq!(s.len(), 11);
        assert!(!s.is_empty());
        assert_eq!(s.last(), Some((10.0, 0.0)));
        assert_eq!(s.name(), "ramp");
    }

    #[test]
    fn interpolation_midpoints() {
        let s = ramp();
        assert_eq!(s.interpolate(2.5), Some(7.5));
        assert_eq!(s.interpolate(-1.0), Some(10.0));
        assert_eq!(s.interpolate(99.0), Some(0.0));
    }

    #[test]
    fn interpolation_empty_is_none() {
        let s = Series::new("empty");
        assert_eq!(s.interpolate(1.0), None);
    }

    #[test]
    fn threshold_crossing() {
        let s = ramp();
        assert_eq!(s.first_x_at_or_below(5.0), Some(5.0));
        assert_eq!(s.first_x_at_or_below(-1.0), None);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_point() {
        Series::new("x").push(0.0, f64::NAN);
    }

    #[test]
    fn series_set_lookup_and_tsv() {
        let mut set = SeriesSet::new("Fig", "demands", "percentile");
        set.add(ramp());
        let mut other = Series::new("other");
        other.push(0.0, 1.0);
        other.push(10.0, 2.0);
        set.add(other);
        assert!(set.by_name("ramp").is_some());
        assert!(set.by_name("nope").is_none());
        let tsv = set.to_tsv();
        assert!(tsv.contains("# Fig"));
        assert!(tsv.contains("demands\tramp\tother"));
        // 11 data rows + 2 header lines.
        assert_eq!(tsv.lines().count(), 13);
        assert_eq!(set.title(), "Fig");
        assert_eq!(format!("{set}"), tsv);
    }
}
