//! The event-driven simulation loop.
//!
//! [`Engine`] owns the virtual clock and the event queue; the caller owns
//! the *world* (all model state) and implements [`Handler`] to react to
//! events. Splitting engine and world this way keeps the borrow checker
//! happy — a handler can freely schedule follow-up events through the
//! engine while mutating its own state.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Reacts to simulation events.
///
/// See the [crate-level example](crate) for a complete simulation.
pub trait Handler<E> {
    /// Handles one event at the engine's current virtual time.
    fn handle(&mut self, engine: &mut Engine<E>, event: E);
}

/// The simulation engine: virtual clock plus event queue.
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
    queue_high_water: usize,
    limit: Option<u64>,
    horizon: Option<SimTime>,
    stopped: bool,
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Engine<E> {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
            queue_high_water: 0,
            limit: None,
            horizon: None,
            stopped: false,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The deepest the event queue has ever been (pending events), an
    /// observability signal for sizing and backlog analysis.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water
    }

    /// Limits the run to at most `limit` events (a runaway backstop).
    pub fn set_event_limit(&mut self, limit: u64) -> &mut Self {
        self.limit = Some(limit);
        self
    }

    /// Stops the run once the clock would pass `horizon`; events due later
    /// are left unprocessed.
    pub fn set_horizon(&mut self, horizon: SimTime) -> &mut Self {
        self.horizon = Some(horizon);
        self
    }

    /// Schedules `event` at the absolute instant `due`.
    ///
    /// # Panics
    ///
    /// Panics if `due` is in the past.
    pub fn schedule_at(&mut self, due: SimTime, event: E) {
        assert!(
            due >= self.now,
            "cannot schedule into the past: now {:?}, due {:?}",
            self.now,
            due
        );
        self.queue.push(due, event);
        self.queue_high_water = self.queue_high_water.max(self.queue.len());
    }

    /// Schedules `event` after `delay` from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
        self.queue_high_water = self.queue_high_water.max(self.queue.len());
    }

    /// Requests that the run loop stop after the current event.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Returns `true` if [`stop`](Engine::stop) was called.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Runs until the queue drains, the event limit or horizon is hit, or a
    /// handler calls [`stop`](Engine::stop). Returns the number of events
    /// processed by this call.
    pub fn run<W: Handler<E>>(&mut self, world: &mut W) -> u64 {
        let start = self.processed;
        while !self.stopped {
            if let Some(limit) = self.limit {
                if self.processed >= limit {
                    break;
                }
            }
            let Some((due, event)) = self.queue.pop() else {
                break;
            };
            if let Some(h) = self.horizon {
                if due > h {
                    // Put nothing back: the horizon ends the simulation.
                    break;
                }
            }
            debug_assert!(due >= self.now, "event queue went backwards");
            self.now = due;
            self.processed += 1;
            world.handle(self, event);
        }
        self.processed - start
    }

    /// Runs every event strictly before `until`, leaving later events
    /// queued. Returns the number of events processed by this call.
    ///
    /// Unlike [`set_horizon`](Engine::set_horizon) — which ends the
    /// whole simulation and discards the first too-late pop — this is
    /// non-destructive: the engine can be resumed with a later `until`.
    /// It is the building block for epoch-windowed sharded execution
    /// (see [`crate::shard`]): each shard drains its window, exchanges
    /// cross-shard events at the barrier, then runs the next window.
    /// Honors [`stop`](Engine::stop) and the event limit.
    pub fn run_window<W: Handler<E>>(&mut self, until: SimTime, world: &mut W) -> u64 {
        let start = self.processed;
        while !self.stopped {
            if let Some(limit) = self.limit {
                if self.processed >= limit {
                    break;
                }
            }
            match self.queue.peek_time() {
                Some(due) if due < until => {}
                _ => break,
            }
            let (due, event) = self.queue.pop().expect("peeked event is poppable");
            debug_assert!(due >= self.now, "event queue went backwards");
            self.now = due;
            self.processed += 1;
            world.handle(self, event);
        }
        self.processed - start
    }

    /// Processes a single event, if one is pending. Returns `true` if an
    /// event was handled. Ignores the horizon and event limit.
    pub fn step<W: Handler<E>>(&mut self, world: &mut W) -> bool {
        match self.queue.pop() {
            Some((due, event)) => {
                self.now = due;
                self.processed += 1;
                world.handle(self, event);
                true
            }
            None => false,
        }
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Engine<E> {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick,
        Boom,
    }

    #[derive(Default)]
    struct World {
        ticks: u32,
        booms: u32,
        times: Vec<f64>,
    }

    impl Handler<Ev> for World {
        fn handle(&mut self, engine: &mut Engine<Ev>, event: Ev) {
            self.times.push(engine.now().as_secs());
            match event {
                Ev::Tick => {
                    self.ticks += 1;
                    if self.ticks < 5 {
                        engine.schedule_in(SimDuration::from_secs(1.0), Ev::Tick);
                    }
                }
                Ev::Boom => self.booms += 1,
            }
        }
    }

    #[test]
    fn runs_to_quiescence() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, Ev::Tick);
        let mut world = World::default();
        let n = engine.run(&mut world);
        assert_eq!(n, 5);
        assert_eq!(world.ticks, 5);
        assert_eq!(engine.now(), SimTime::from_secs(4.0));
    }

    #[test]
    fn clock_is_monotone() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(3.0), Ev::Boom);
        engine.schedule_at(SimTime::from_secs(1.0), Ev::Boom);
        engine.schedule_at(SimTime::from_secs(2.0), Ev::Boom);
        let mut world = World::default();
        engine.run(&mut world);
        assert_eq!(world.times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn horizon_cuts_off_late_events() {
        let mut engine = Engine::new();
        engine.set_horizon(SimTime::from_secs(2.5));
        engine.schedule_at(SimTime::from_secs(1.0), Ev::Boom);
        engine.schedule_at(SimTime::from_secs(2.0), Ev::Boom);
        engine.schedule_at(SimTime::from_secs(3.0), Ev::Boom);
        let mut world = World::default();
        engine.run(&mut world);
        assert_eq!(world.booms, 2);
    }

    #[test]
    fn event_limit_is_respected() {
        let mut engine = Engine::new();
        engine.set_event_limit(3);
        for i in 0..10 {
            engine.schedule_at(SimTime::from_secs(i as f64), Ev::Boom);
        }
        let mut world = World::default();
        engine.run(&mut world);
        assert_eq!(world.booms, 3);
        assert_eq!(engine.pending(), 7);
    }

    #[test]
    fn stop_ends_run() {
        struct Stopper;
        impl Handler<Ev> for Stopper {
            fn handle(&mut self, engine: &mut Engine<Ev>, _: Ev) {
                engine.stop();
            }
        }
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, Ev::Boom);
        engine.schedule_at(SimTime::from_secs(1.0), Ev::Boom);
        let mut world = Stopper;
        let n = engine.run(&mut world);
        assert_eq!(n, 1);
        assert!(engine.is_stopped());
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn queue_high_water_tracks_peak_depth() {
        let mut engine = Engine::new();
        for i in 0..4 {
            engine.schedule_at(SimTime::from_secs(i as f64), Ev::Boom);
        }
        assert_eq!(engine.queue_high_water(), 4);
        let mut world = World::default();
        engine.run(&mut world);
        // Draining the queue does not lower the mark.
        assert_eq!(engine.queue_high_water(), 4);
    }

    #[test]
    fn run_window_is_resumable() {
        let mut engine = Engine::new();
        for i in 0..6 {
            engine.schedule_at(SimTime::from_secs(i as f64), Ev::Boom);
        }
        let mut world = World::default();
        // Strictly-before semantics: the event at t=3 stays queued.
        assert_eq!(engine.run_window(SimTime::from_secs(3.0), &mut world), 3);
        assert_eq!(world.booms, 3);
        assert_eq!(engine.pending(), 3);
        // Resume with a later window; nothing was discarded.
        assert_eq!(engine.run_window(SimTime::from_secs(100.0), &mut world), 3);
        assert_eq!(world.booms, 6);
        assert!(engine.pending() == 0);
        assert_eq!(engine.run_window(SimTime::from_secs(200.0), &mut world), 0);
    }

    #[test]
    fn step_processes_one_event() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, Ev::Boom);
        engine.schedule_at(SimTime::from_secs(1.0), Ev::Boom);
        let mut world = World::default();
        assert!(engine.step(&mut world));
        assert_eq!(world.booms, 1);
        assert!(engine.step(&mut world));
        assert!(!engine.step(&mut world));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(5.0), Ev::Boom);
        let mut world = World::default();
        engine.run(&mut world);
        engine.schedule_at(SimTime::from_secs(1.0), Ev::Boom);
    }
}
