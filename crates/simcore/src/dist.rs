//! Random variates used by the simulation model.
//!
//! The paper's event-driven model (Section 5.2) needs exponential execution
//! times, Bernoulli failure indicators and categorical response outcomes.
//! Each distribution here is a small value type that samples from a
//! [`StreamRng`], so the distribution parameters live with the model and
//! the randomness stays in named streams.

use crate::rng::StreamRng;
use crate::time::SimDuration;

/// Exponential distribution with a given mean (not rate).
///
/// The paper parameterises execution times by their means
/// (`T1Mean = 0.7 sec` etc.), so the constructor takes a mean.
///
/// # Example
///
/// ```
/// use wsu_simcore::dist::Exponential;
/// use wsu_simcore::rng::StreamRng;
///
/// let exp = Exponential::with_mean(0.7);
/// let mut rng = StreamRng::from_seed(1);
/// let x = exp.sample(&mut rng);
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn with_mean(mean: f64) -> Exponential {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        Exponential { mean }
    }

    /// Returns the mean of the distribution.
    pub fn mean(self) -> f64 {
        self.mean
    }

    /// Draws one variate.
    pub fn sample(self, rng: &mut StreamRng) -> f64 {
        // Inverse CDF; 1 - U avoids ln(0) since U ∈ [0, 1).
        -self.mean * (1.0 - rng.next_f64()).ln()
    }

    /// Draws one variate as a [`SimDuration`].
    pub fn sample_duration(self, rng: &mut StreamRng) -> SimDuration {
        SimDuration::from_secs(self.sample(rng))
    }
}

/// A discrete distribution over `0..k` given by explicit probabilities.
///
/// Used for the paper's three-way response outcomes (correct / evident
/// failure / non-evident failure) and the conditional rows of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    probs: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty, contains negative or non-finite values,
    /// or does not sum to 1 within `1e-9`.
    pub fn new(probs: impl Into<Vec<f64>>) -> Categorical {
        let probs = probs.into();
        assert!(!probs.is_empty(), "categorical needs at least one class");
        let mut total = 0.0;
        for &p in &probs {
            assert!(p.is_finite() && p >= 0.0, "invalid probability {p}");
            total += p;
        }
        assert!(
            (total - 1.0).abs() < 1e-9,
            "probabilities must sum to 1, got {total}"
        );
        Categorical { probs }
    }

    /// Returns the probability of class `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn prob(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Returns `true` if the distribution has no classes (never true for a
    /// constructed value; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Draws one class index.
    pub fn sample(&self, rng: &mut StreamRng) -> usize {
        rng.pick_weighted(&self.probs)
    }
}

/// Deterministic (degenerate) distribution — always returns the same value.
///
/// Useful for ablations that replace a random component with a constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degenerate {
    value: f64,
}

impl Degenerate {
    /// Creates a degenerate distribution at `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite or is negative.
    pub fn at(value: f64) -> Degenerate {
        assert!(
            value.is_finite() && value >= 0.0,
            "degenerate value must be finite and non-negative"
        );
        Degenerate { value }
    }

    /// Returns the constant value.
    pub fn sample(self, _rng: &mut StreamRng) -> f64 {
        self.value
    }
}

/// A positive-valued sampling model: either exponential or a constant.
///
/// The execution-time model of eq. (7) uses exponential components, but
/// ablation experiments swap in constants; this enum lets model code hold
/// either without generics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayModel {
    /// Exponentially distributed delay with the given mean.
    Exponential(Exponential),
    /// Constant delay.
    Constant(Degenerate),
}

impl DelayModel {
    /// Exponential delay with the given mean seconds.
    pub fn exponential(mean_secs: f64) -> DelayModel {
        DelayModel::Exponential(Exponential::with_mean(mean_secs))
    }

    /// Constant delay of the given seconds.
    pub fn constant(secs: f64) -> DelayModel {
        DelayModel::Constant(Degenerate::at(secs))
    }

    /// Mean of the delay in seconds.
    pub fn mean(self) -> f64 {
        match self {
            DelayModel::Exponential(e) => e.mean(),
            DelayModel::Constant(d) => d.sample(&mut StreamRng::from_seed(0)),
        }
    }

    /// Draws one delay.
    pub fn sample(self, rng: &mut StreamRng) -> SimDuration {
        let secs = match self {
            DelayModel::Exponential(e) => e.sample(rng),
            DelayModel::Constant(d) => d.sample(rng),
        };
        SimDuration::from_secs(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_converges() {
        let exp = Exponential::with_mean(0.7);
        let mut rng = StreamRng::from_seed(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.7).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let exp = Exponential::with_mean(1.0);
        let mut rng = StreamRng::from_seed(12);
        for _ in 0..10_000 {
            assert!(exp.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn exponential_tail_probability() {
        // P(X > mean) = e^{-1} ≈ 0.3679 for any exponential.
        let exp = Exponential::with_mean(2.0);
        let mut rng = StreamRng::from_seed(13);
        let n = 100_000;
        let tail = (0..n).filter(|_| exp.sample(&mut rng) > 2.0).count();
        assert!((tail as f64 / n as f64 - (-1.0f64).exp()).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_mean() {
        let _ = Exponential::with_mean(0.0);
    }

    #[test]
    fn categorical_frequencies_match() {
        let cat = Categorical::new([0.5, 0.25, 0.25]);
        let mut rng = StreamRng::from_seed(14);
        let mut counts = [0u32; 3];
        for _ in 0..100_000 {
            counts[cat.sample(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / 100_000.0 - 0.5).abs() < 0.01);
        assert!((counts[1] as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn categorical_accessors() {
        let cat = Categorical::new([0.7, 0.15, 0.15]);
        assert_eq!(cat.len(), 3);
        assert!(!cat.is_empty());
        assert_eq!(cat.prob(0), 0.7);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn categorical_rejects_bad_sum() {
        let _ = Categorical::new([0.5, 0.6]);
    }

    #[test]
    fn degenerate_returns_constant() {
        let d = Degenerate::at(0.1);
        let mut rng = StreamRng::from_seed(15);
        assert_eq!(d.sample(&mut rng), 0.1);
    }

    #[test]
    fn delay_model_means() {
        assert_eq!(DelayModel::exponential(0.7).mean(), 0.7);
        assert_eq!(DelayModel::constant(0.1).mean(), 0.1);
    }

    #[test]
    fn delay_model_constant_sampling() {
        let mut rng = StreamRng::from_seed(16);
        let d = DelayModel::constant(0.25).sample(&mut rng);
        assert_eq!(d.as_secs(), 0.25);
    }
}
