//! A stable priority queue of timestamped events.
//!
//! Events scheduled for the same instant are delivered in scheduling order
//! (FIFO), which keeps simulations deterministic even when many events share
//! a timestamp — common with constant middleware delays like the paper's
//! adjudication time `dT`.
//!
//! [`EventQueue`] is a calendar queue (time wheel): events hash into a
//! fixed ring of day-wide buckets, so `push` is an append into a reused
//! `Vec` slot and `pop` scans forward from the current day. Bucket
//! storage is retained across pops, so after warm-up the steady-state
//! demand loop schedules without touching the allocator. Events due
//! beyond a full ring lap of the cursor go to a *far-future spill
//! list* instead of wrapping into a bucket they don't belong to yet;
//! they migrate into the ring as the cursor approaches (see
//! `migrate_spill`). The previous binary-heap implementation survives
//! as [`HeapEventQueue`]; the two pop identical `(time, seq)` orders
//! (see the equivalence tests below).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Number of day-wide buckets in the calendar ring (a power of two so
/// the day-to-bucket map is a mask).
const BUCKETS: usize = 64;
const BUCKET_MASK: u64 = (BUCKETS as u64) - 1;

/// Virtual seconds per calendar day. One second matches the demand
/// cadence of the paper's workloads: a closed-loop demand every ~1 s
/// lands each event in the current or next bucket.
const DAY_SECS: f64 = 1.0;

/// Initial capacity of each bucket, reserved at construction so the
/// first push into a bucket never allocates — without it, a bucket
/// first reached mid-measurement would break the steady-state
/// zero-allocation contract.
const BUCKET_CAPACITY: usize = 4;

/// A pending event with its due time and a tie-breaking sequence number.
#[derive(Debug)]
struct Scheduled<E> {
    due: SimTime,
    seq: u64,
    event: E,
}

impl<E> Scheduled<E> {
    /// The calendar day this event belongs to.
    fn day(&self) -> u64 {
        day_of(self.due)
    }
}

fn day_of(due: SimTime) -> u64 {
    (due.as_secs() / DAY_SECS) as u64
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, with the sequence number as a FIFO tie-breaker.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
///
/// # Example
///
/// ```
/// use wsu_simcore::queue::EventQueue;
/// use wsu_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Events due more than a full ring lap past the cursor at push
    /// time. Unsorted; scanned only while non-empty (far-future events
    /// are rare in the closed demand loop) and migrated into the ring
    /// as the cursor approaches.
    spill: Vec<Scheduled<E>>,
    /// The day the next pop starts scanning from; always at or below the
    /// earliest pending event's day.
    current_day: u64,
    len: usize,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            buckets: (0..BUCKETS)
                .map(|_| Vec::with_capacity(BUCKET_CAPACITY))
                .collect(),
            spill: Vec::new(),
            current_day: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Schedules `event` at the instant `due`.
    pub fn push(&mut self, due: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let day = day_of(due);
        if self.len == 0 || day < self.current_day {
            self.current_day = day;
        }
        self.len += 1;
        let scheduled = Scheduled { due, seq, event };
        if day >= self.current_day.saturating_add(BUCKETS as u64) {
            // More than a full lap ahead: a bucket would alias an
            // earlier lap's day. Spill and migrate later.
            self.spill.push(scheduled);
        } else {
            self.buckets[(day & BUCKET_MASK) as usize].push(scheduled);
        }
    }

    /// Moves every spilled event whose day is now within one ring lap
    /// of the cursor into its bucket.
    fn migrate_spill(&mut self) {
        if self.spill.is_empty() {
            return;
        }
        let horizon = self.current_day.saturating_add(BUCKETS as u64);
        let mut i = 0;
        while i < self.spill.len() {
            if self.spill[i].day() < horizon {
                let s = self.spill.swap_remove(i);
                self.buckets[(s.day() & BUCKET_MASK) as usize].push(s);
            } else {
                i += 1;
            }
        }
    }

    /// Index (bucket, slot, day) of the earliest `(due, seq)` event
    /// within one ring lap of the cursor, if any.
    fn find_in_lap(&self) -> Option<(usize, usize, u64)> {
        // One lap of the ring starting at the current day: in each bucket,
        // only events belonging to that exact day are candidates (later
        // laps share the bucket but must not be popped early).
        for offset in 0..BUCKETS as u64 {
            let day = self.current_day.saturating_add(offset);
            let bucket = (day & BUCKET_MASK) as usize;
            let mut best: Option<(usize, SimTime, u64)> = None;
            for (slot, s) in self.buckets[bucket].iter().enumerate() {
                if s.day() != day {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, due, seq)) => (s.due, s.seq) < (due, seq),
                };
                if better {
                    best = Some((slot, s.due, s.seq));
                }
            }
            if let Some((slot, _, _)) = best {
                return Some((bucket, slot, day));
            }
        }
        None
    }

    /// Global-scan backstop: the earliest `(due, seq)` bucket resident
    /// regardless of the cursor. Needed when a push behind the cursor
    /// rewound it past events that were in-horizon when they were
    /// pushed and now sit more than a lap ahead.
    fn bucket_global_earliest(&self) -> Option<(usize, usize, SimTime, u64)> {
        let mut best: Option<(usize, usize, SimTime, u64)> = None;
        for (bucket, events) in self.buckets.iter().enumerate() {
            for (slot, s) in events.iter().enumerate() {
                let better = match best {
                    None => true,
                    Some((_, _, due, seq)) => (s.due, s.seq) < (due, seq),
                };
                if better {
                    best = Some((bucket, slot, s.due, s.seq));
                }
            }
        }
        best
    }

    /// The earliest `(due, seq)` spilled event, if any.
    fn spill_earliest(&self) -> Option<(SimTime, u64)> {
        self.spill.iter().map(|s| (s.due, s.seq)).min()
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            self.migrate_spill();
            if let Some((bucket, slot, day)) = self.find_in_lap() {
                // In-lap events precede every migrated-out spill entry
                // (spill days are ≥ cursor + one lap after migration).
                self.current_day = day;
                self.len -= 1;
                let s = self.buckets[bucket].swap_remove(slot);
                return Some((s.due, s.event));
            }
            // Nothing within one lap: the earliest pending event is a
            // beyond-horizon bucket resident (cursor was rewound past
            // it) or the spill minimum — whichever is earlier.
            let bucket_best = self.bucket_global_earliest();
            let spill_best = self.spill_earliest();
            match (bucket_best, spill_best) {
                (Some((bucket, slot, due, seq)), spill) => {
                    if spill.is_some_and(|(sd, ss)| (sd, ss) < (due, seq)) {
                        // Jump the cursor to the spill minimum; the next
                        // iteration migrates it in and the lap scan
                        // finds it.
                        let (sd, _) = spill.expect("spill minimum exists");
                        self.current_day = day_of(sd);
                        continue;
                    }
                    self.current_day = day_of(due);
                    self.len -= 1;
                    let s = self.buckets[bucket].swap_remove(slot);
                    return Some((s.due, s.event));
                }
                (None, Some((due, _))) => {
                    self.current_day = day_of(due);
                    continue;
                }
                (None, None) => unreachable!("len > 0 but no pending event found"),
            }
        }
    }

    /// Returns the due time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // A lap hit is the earliest bucket resident, but an unmigrated
        // spill entry can still precede it (the cursor advanced since
        // the entry spilled), so always take the minimum of both sides.
        let bucket = match self.find_in_lap() {
            Some((bucket, slot, _)) => {
                let s = &self.buckets[bucket][slot];
                Some((s.due, s.seq))
            }
            None => self
                .bucket_global_earliest()
                .map(|(_, _, due, seq)| (due, seq)),
        };
        match (bucket, self.spill_earliest()) {
            (Some(b), Some(s)) => Some(b.min(s).0),
            (Some((due, _)), None) | (None, Some((due, _))) => Some(due),
            (None, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of pending events currently parked on the far-future
    /// spill list (diagnostic; they pop in exactly the same global
    /// order as bucket residents).
    pub fn spilled(&self) -> usize {
        self.spill.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards all pending events. Bucket storage is retained, so a
    /// cleared queue schedules without allocating.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.spill.clear();
        self.len = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

/// The original binary-heap event queue.
///
/// Kept as the reference implementation the calendar [`EventQueue`] is
/// checked against: both must pop the exact same `(time, seq)` order on
/// any schedule. Prefer [`EventQueue`] everywhere else — it does not
/// allocate in steady state.
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> HeapEventQueue<E> {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at the instant `due`.
    pub fn push(&mut self, due: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { due, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.due, s.event))
    }

    /// Returns the due time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.due)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> HeapEventQueue<E> {
        HeapEventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StreamRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), 3);
        q.push(SimTime::from_secs(1.0), 1);
        q.push(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_maintains_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5.0), 5);
        q.push(SimTime::from_secs(1.0), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_secs(2.0), 2);
        q.push(SimTime::from_secs(9.0), 9);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 9);
    }

    #[test]
    fn far_future_events_pop_after_a_cursor_jump() {
        let mut q = EventQueue::new();
        // More than a full ring lap ahead of each other.
        q.push(SimTime::from_secs(1_000_000.0), "far");
        q.push(SimTime::from_secs(0.5), "near");
        q.push(SimTime::from_secs(31_500_000.0), "never");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(31_500_000.0)));
        assert_eq!(q.pop().unwrap().1, "never");
        assert!(q.is_empty());
    }

    #[test]
    fn same_bucket_different_lap_is_not_popped_early() {
        let mut q = EventQueue::new();
        // 0.25 and 64.25 share bucket 0; the later lap must wait for
        // everything in between.
        q.push(SimTime::from_secs(64.25), 64);
        q.push(SimTime::from_secs(0.25), 0);
        q.push(SimTime::from_secs(63.25), 63);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 63, 64]);
    }

    #[test]
    fn push_behind_the_cursor_rewinds_it() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(50.0), "late");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(50.0)));
        q.push(SimTime::from_secs(2.0), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    /// Drives the calendar queue and the reference heap queue through the
    /// same randomized schedule/pop interleavings — including same-time
    /// bursts and far-future outliers — and requires identical
    /// `(time, event)` pop sequences. Deterministic seeded sweep standing
    /// in for a property test (no proptest in this workspace).
    #[test]
    fn calendar_and_heap_pop_identical_orders() {
        for seed in 0..32u64 {
            let mut rng = StreamRng::from_seed(0xCA1E_0000 + seed);
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
            let mut event = 0u64;
            let mut popped = Vec::new();
            for _step in 0..400 {
                let roll = rng.next_f64();
                if roll < 0.45 {
                    // Single push at a random horizon; occasionally a
                    // far-future outlier beyond a full ring lap.
                    let t = if rng.next_f64() < 0.05 {
                        1_000.0 + rng.next_f64() * 1.0e6
                    } else {
                        rng.next_f64() * 120.0
                    };
                    let due = SimTime::from_secs(t);
                    cal.push(due, event);
                    heap.push(due, event);
                    event += 1;
                } else if roll < 0.6 {
                    // Same-time burst: several events at one instant must
                    // come back FIFO.
                    let t = SimTime::from_secs((rng.next_f64() * 60.0).floor());
                    let burst = 2 + (rng.next_u64() % 6);
                    for _ in 0..burst {
                        cal.push(t, event);
                        heap.push(t, event);
                        event += 1;
                    }
                } else {
                    assert_eq!(cal.peek_time(), heap.peek_time(), "seed {seed}");
                    assert_eq!(cal.pop(), heap.pop(), "seed {seed}");
                }
                assert_eq!(cal.len(), heap.len(), "seed {seed}");
            }
            // Drain both completely; with no more pushes the drained
            // sequence must be globally time-ordered.
            loop {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "seed {seed}");
                match a {
                    Some(p) => popped.push(p),
                    None => break,
                }
            }
            for w in popped.windows(2) {
                assert!(w[0].0 <= w[1].0, "seed {seed}: out of order");
            }
        }
    }

    #[test]
    fn far_future_pushes_land_on_the_spill_list() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(0.5), "near");
        q.push(SimTime::from_secs(63.5), "edge"); // last in-lap day
        q.push(SimTime::from_secs(64.5), "spilled"); // one lap ahead
        q.push(SimTime::from_secs(1.0e6), "far");
        assert_eq!(q.spilled(), 2);
        assert_eq!(q.len(), 4);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["near", "edge", "spilled", "far"]);
        assert_eq!(q.spilled(), 0);
    }

    #[test]
    fn unmigrated_spill_precedes_lap_hit_in_peek_and_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(0.5), "a");
        // Beyond one lap of cursor day 0: spilled.
        q.push(SimTime::from_secs(64.5), "s");
        q.push(SimTime::from_secs(50.5), "c");
        assert_eq!(q.spilled(), 1);
        assert_eq!(q.pop().unwrap().1, "a");
        // Popping "c" advances the cursor to day 50 without migrating
        // "s" (day 64 was beyond the lap when the pop began).
        assert_eq!(q.pop().unwrap().1, "c");
        // "b" is within the new lap, but the still-spilled "s" is due
        // earlier; neither peek nor pop may prefer the lap hit.
        q.push(SimTime::from_secs(100.5), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(64.5)));
        assert_eq!(q.pop().unwrap().1, "s");
        assert_eq!(q.spilled(), 0);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn rewound_cursor_bucket_resident_vs_spill_ordering() {
        let mut q = EventQueue::new();
        // Cursor starts at day 100; a same-bucket later event stays put.
        q.push(SimTime::from_secs(100.5), "anchor");
        q.push(SimTime::from_secs(170.5), "spilled"); // ≥ 100 + 64: spill
                                                      // Rewind: the anchor is now a beyond-horizon *bucket* resident.
        q.push(SimTime::from_secs(0.5), "early");
        assert_eq!(q.spilled(), 1);
        assert_eq!(q.pop().unwrap().1, "early");
        // Global-scan backstop must pick the bucket resident (100.5)
        // over the spill minimum (170.5).
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(100.5)));
        assert_eq!(q.pop().unwrap().1, "anchor");
        assert_eq!(q.pop().unwrap().1, "spilled");
        assert!(q.pop().is_none());
    }

    #[test]
    fn clear_discards_spilled_events_too() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(0.5), 1);
        q.push(SimTime::from_secs(1.0e7), 2);
        assert_eq!(q.spilled(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.spilled(), 0);
        assert_eq!(q.pop(), None);
    }

    /// The spill-heavy mirror of `calendar_and_heap_pop_identical_orders`:
    /// a 32-seed sweep whose push mix is dominated by beyond-horizon
    /// offsets (one lap to ~10⁷ s ahead), including same-instant bursts
    /// entirely in the far future, so pop order across the
    /// bucket/spill boundary — and FIFO ties inside the spill list —
    /// are checked against the reference heap.
    #[test]
    fn spill_heavy_schedules_match_heap_order() {
        let mut saw_spill = false;
        for seed in 0..32u64 {
            let mut rng = StreamRng::from_seed(0x5B11_0000 + seed);
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
            let mut event = 0u64;
            for _step in 0..500 {
                let roll = rng.next_f64();
                if roll < 0.5 {
                    let pick = rng.next_f64();
                    let t = if pick < 0.35 {
                        rng.next_f64() * 63.0 // in-lap
                    } else if pick < 0.65 {
                        64.0 + rng.next_f64() * 500.0 // just past one lap
                    } else {
                        1.0e3 + rng.next_f64() * 1.0e7 // deep future
                    };
                    let due = SimTime::from_secs(t);
                    cal.push(due, event);
                    heap.push(due, event);
                    event += 1;
                } else if roll < 0.65 {
                    // Same-instant burst in the far future: FIFO order
                    // must survive the spill list and migration.
                    let t = SimTime::from_secs(200.0 + (rng.next_f64() * 1.0e4).floor());
                    let burst = 2 + (rng.next_u64() % 5);
                    for _ in 0..burst {
                        cal.push(t, event);
                        heap.push(t, event);
                        event += 1;
                    }
                } else {
                    assert_eq!(cal.peek_time(), heap.peek_time(), "seed {seed}");
                    assert_eq!(cal.pop(), heap.pop(), "seed {seed}");
                }
                assert_eq!(cal.len(), heap.len(), "seed {seed}");
                saw_spill |= cal.spilled() > 0;
            }
            loop {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "seed {seed}");
                if a.is_none() {
                    break;
                }
            }
        }
        assert!(saw_spill, "sweep never exercised the spill list");
    }

    #[test]
    fn heap_queue_basics_still_hold() {
        let mut q = HeapEventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_secs(2.0), "late");
        q.push(SimTime::from_secs(1.0), "early");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early")));
        q.clear();
        assert!(HeapEventQueue::<u8>::default().is_empty());
        assert_eq!(q.pop(), None);
    }
}
