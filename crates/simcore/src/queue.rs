//! A stable priority queue of timestamped events.
//!
//! Events scheduled for the same instant are delivered in scheduling order
//! (FIFO), which keeps simulations deterministic even when many events share
//! a timestamp — common with constant middleware delays like the paper's
//! adjudication time `dT`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event with its due time and a tie-breaking sequence number.
#[derive(Debug)]
struct Scheduled<E> {
    due: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, with the sequence number as a FIFO tie-breaker.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
///
/// # Example
///
/// ```
/// use wsu_simcore::queue::EventQueue;
/// use wsu_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at the instant `due`.
    pub fn push(&mut self, due: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { due, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.due, s.event))
    }

    /// Returns the due time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.due)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), 3);
        q.push(SimTime::from_secs(1.0), 1);
        q.push(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_maintains_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5.0), 5);
        q.push(SimTime::from_secs(1.0), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_secs(2.0), 2);
        q.push(SimTime::from_secs(9.0), 9);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 9);
    }
}
