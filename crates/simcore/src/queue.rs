//! A stable priority queue of timestamped events.
//!
//! Events scheduled for the same instant are delivered in scheduling order
//! (FIFO), which keeps simulations deterministic even when many events share
//! a timestamp — common with constant middleware delays like the paper's
//! adjudication time `dT`.
//!
//! [`EventQueue`] is a calendar queue (time wheel): events hash into a
//! fixed ring of day-wide buckets, so `push` is an append into a reused
//! `Vec` slot and `pop` scans forward from the current day. Bucket
//! storage is retained across pops, so after warm-up the steady-state
//! demand loop schedules without touching the allocator. The previous
//! binary-heap implementation survives as [`HeapEventQueue`]; the two
//! pop identical `(time, seq)` orders (see the equivalence test below).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Number of day-wide buckets in the calendar ring (a power of two so
/// the day-to-bucket map is a mask).
const BUCKETS: usize = 64;
const BUCKET_MASK: u64 = (BUCKETS as u64) - 1;

/// Virtual seconds per calendar day. One second matches the demand
/// cadence of the paper's workloads: a closed-loop demand every ~1 s
/// lands each event in the current or next bucket.
const DAY_SECS: f64 = 1.0;

/// Initial capacity of each bucket, reserved at construction so the
/// first push into a bucket never allocates — without it, a bucket
/// first reached mid-measurement would break the steady-state
/// zero-allocation contract.
const BUCKET_CAPACITY: usize = 4;

/// A pending event with its due time and a tie-breaking sequence number.
#[derive(Debug)]
struct Scheduled<E> {
    due: SimTime,
    seq: u64,
    event: E,
}

impl<E> Scheduled<E> {
    /// The calendar day this event belongs to.
    fn day(&self) -> u64 {
        day_of(self.due)
    }
}

fn day_of(due: SimTime) -> u64 {
    (due.as_secs() / DAY_SECS) as u64
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, with the sequence number as a FIFO tie-breaker.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
///
/// # Example
///
/// ```
/// use wsu_simcore::queue::EventQueue;
/// use wsu_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    buckets: Vec<Vec<Scheduled<E>>>,
    /// The day the next pop starts scanning from; always at or below the
    /// earliest pending event's day.
    current_day: u64,
    len: usize,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            buckets: (0..BUCKETS)
                .map(|_| Vec::with_capacity(BUCKET_CAPACITY))
                .collect(),
            current_day: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Schedules `event` at the instant `due`.
    pub fn push(&mut self, due: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let day = day_of(due);
        if self.len == 0 || day < self.current_day {
            self.current_day = day;
        }
        self.len += 1;
        self.buckets[(day & BUCKET_MASK) as usize].push(Scheduled { due, seq, event });
    }

    /// Index (bucket, slot) of the earliest `(due, seq)` pending event,
    /// plus its day.
    fn find_earliest(&self) -> Option<(usize, usize, u64)> {
        if self.len == 0 {
            return None;
        }
        // One lap of the ring starting at the current day: in each bucket,
        // only events belonging to that exact day are candidates (later
        // laps share the bucket but must not be popped early).
        for offset in 0..BUCKETS as u64 {
            let day = self.current_day.saturating_add(offset);
            let bucket = (day & BUCKET_MASK) as usize;
            let mut best: Option<(usize, SimTime, u64)> = None;
            for (slot, s) in self.buckets[bucket].iter().enumerate() {
                if s.day() != day {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, due, seq)) => (s.due, s.seq) < (due, seq),
                };
                if better {
                    best = Some((slot, s.due, s.seq));
                }
            }
            if let Some((slot, _, _)) = best {
                return Some((bucket, slot, day));
            }
        }
        // Everything pending is more than a full lap ahead: fall back to
        // a global scan for the overall minimum and jump the cursor.
        let mut best: Option<(usize, usize, SimTime, u64)> = None;
        for (bucket, events) in self.buckets.iter().enumerate() {
            for (slot, s) in events.iter().enumerate() {
                let better = match best {
                    None => true,
                    Some((_, _, due, seq)) => (s.due, s.seq) < (due, seq),
                };
                if better {
                    best = Some((bucket, slot, s.due, s.seq));
                }
            }
        }
        best.map(|(bucket, slot, due, _)| (bucket, slot, day_of(due)))
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (bucket, slot, day) = self.find_earliest()?;
        self.current_day = day;
        self.len -= 1;
        let s = self.buckets[bucket].swap_remove(slot);
        Some((s.due, s.event))
    }

    /// Returns the due time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.find_earliest()
            .map(|(bucket, slot, _)| self.buckets[bucket][slot].due)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards all pending events. Bucket storage is retained, so a
    /// cleared queue schedules without allocating.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.len = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

/// The original binary-heap event queue.
///
/// Kept as the reference implementation the calendar [`EventQueue`] is
/// checked against: both must pop the exact same `(time, seq)` order on
/// any schedule. Prefer [`EventQueue`] everywhere else — it does not
/// allocate in steady state.
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> HeapEventQueue<E> {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at the instant `due`.
    pub fn push(&mut self, due: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { due, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.due, s.event))
    }

    /// Returns the due time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.due)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> HeapEventQueue<E> {
        HeapEventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StreamRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), 3);
        q.push(SimTime::from_secs(1.0), 1);
        q.push(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_maintains_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5.0), 5);
        q.push(SimTime::from_secs(1.0), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_secs(2.0), 2);
        q.push(SimTime::from_secs(9.0), 9);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 9);
    }

    #[test]
    fn far_future_events_pop_after_a_cursor_jump() {
        let mut q = EventQueue::new();
        // More than a full ring lap ahead of each other.
        q.push(SimTime::from_secs(1_000_000.0), "far");
        q.push(SimTime::from_secs(0.5), "near");
        q.push(SimTime::from_secs(31_500_000.0), "never");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(31_500_000.0)));
        assert_eq!(q.pop().unwrap().1, "never");
        assert!(q.is_empty());
    }

    #[test]
    fn same_bucket_different_lap_is_not_popped_early() {
        let mut q = EventQueue::new();
        // 0.25 and 64.25 share bucket 0; the later lap must wait for
        // everything in between.
        q.push(SimTime::from_secs(64.25), 64);
        q.push(SimTime::from_secs(0.25), 0);
        q.push(SimTime::from_secs(63.25), 63);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 63, 64]);
    }

    #[test]
    fn push_behind_the_cursor_rewinds_it() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(50.0), "late");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(50.0)));
        q.push(SimTime::from_secs(2.0), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    /// Drives the calendar queue and the reference heap queue through the
    /// same randomized schedule/pop interleavings — including same-time
    /// bursts and far-future outliers — and requires identical
    /// `(time, event)` pop sequences. Deterministic seeded sweep standing
    /// in for a property test (no proptest in this workspace).
    #[test]
    fn calendar_and_heap_pop_identical_orders() {
        for seed in 0..32u64 {
            let mut rng = StreamRng::from_seed(0xCA1E_0000 + seed);
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
            let mut event = 0u64;
            let mut popped = Vec::new();
            for _step in 0..400 {
                let roll = rng.next_f64();
                if roll < 0.45 {
                    // Single push at a random horizon; occasionally a
                    // far-future outlier beyond a full ring lap.
                    let t = if rng.next_f64() < 0.05 {
                        1_000.0 + rng.next_f64() * 1.0e6
                    } else {
                        rng.next_f64() * 120.0
                    };
                    let due = SimTime::from_secs(t);
                    cal.push(due, event);
                    heap.push(due, event);
                    event += 1;
                } else if roll < 0.6 {
                    // Same-time burst: several events at one instant must
                    // come back FIFO.
                    let t = SimTime::from_secs((rng.next_f64() * 60.0).floor());
                    let burst = 2 + (rng.next_u64() % 6);
                    for _ in 0..burst {
                        cal.push(t, event);
                        heap.push(t, event);
                        event += 1;
                    }
                } else {
                    assert_eq!(cal.peek_time(), heap.peek_time(), "seed {seed}");
                    assert_eq!(cal.pop(), heap.pop(), "seed {seed}");
                }
                assert_eq!(cal.len(), heap.len(), "seed {seed}");
            }
            // Drain both completely; with no more pushes the drained
            // sequence must be globally time-ordered.
            loop {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "seed {seed}");
                match a {
                    Some(p) => popped.push(p),
                    None => break,
                }
            }
            for w in popped.windows(2) {
                assert!(w[0].0 <= w[1].0, "seed {seed}: out of order");
            }
        }
    }

    #[test]
    fn heap_queue_basics_still_hold() {
        let mut q = HeapEventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_secs(2.0), "late");
        q.push(SimTime::from_secs(1.0), "early");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early")));
        q.clear();
        assert!(HeapEventQueue::<u8>::default().is_empty());
        assert_eq!(q.pop(), None);
    }
}
