//! Deterministic replication-level parallelism.
//!
//! The paper's Section 5.2 evaluation is a replication study: many
//! independent runs of the same middleware simulation, each seeded from
//! its own derived RNG streams, merged into one table. Those
//! replications share no state, so they can be fanned out over a worker
//! pool — *provided* the merge is performed in replication order, so
//! that every report, metrics snapshot and trace is byte-identical
//! whatever the worker count.
//!
//! [`par_map`] is that runner: it executes `f(0), f(1), …, f(count-1)`
//! on up to [`Jobs`] worker threads (plain `std::thread::scope`, no
//! dependencies) and returns the results **indexed in replication
//! order**. Each replication must derive all the randomness it needs
//! from its own index (e.g. via
//! [`MasterSeed::indexed_stream`](crate::rng::MasterSeed::indexed_stream)
//! or per-replication named streams) and own all the state it mutates;
//! the closure only gets shared (`&`/`Sync`) access to its environment,
//! so the compiler enforces the latter.
//!
//! # Determinism contract
//!
//! For any `jobs` values `a` and `b`, `par_map(a, n, f)` and
//! `par_map(b, n, f)` return equal vectors, provided `f(i)` depends
//! only on `i` and immutable captures. Work-stealing order, thread
//! count and scheduling jitter never leak into results — only into
//! wall-clock time.
//!
//! # Example
//!
//! ```
//! use wsu_simcore::par::{par_map, Jobs};
//! use wsu_simcore::rng::MasterSeed;
//!
//! let seed = MasterSeed::new(7);
//! let sequential = par_map(Jobs::serial(), 8, |i| {
//!     seed.indexed_stream("replication", i as u64).next_u64()
//! });
//! let parallel = par_map(Jobs::new(4), 8, |i| {
//!     seed.indexed_stream("replication", i as u64).next_u64()
//! });
//! assert_eq!(sequential, parallel);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Worker count for a parallel replication sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Jobs(NonZeroUsize);

impl Jobs {
    /// Exactly one worker: replications run sequentially on the calling
    /// thread, with no thread spawned at all.
    pub const fn serial() -> Jobs {
        Jobs(NonZeroUsize::MIN)
    }

    /// `n` workers; `0` is clamped to 1.
    pub fn new(n: usize) -> Jobs {
        Jobs(NonZeroUsize::new(n).unwrap_or(NonZeroUsize::MIN))
    }

    /// One worker per available hardware thread (the `--jobs` default).
    pub fn auto() -> Jobs {
        Jobs(thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// `Some(n)` → `n` workers (0 clamped to 1); `None` → [`Jobs::auto`].
    pub fn from_request(requested: Option<usize>) -> Jobs {
        match requested {
            Some(n) => Jobs::new(n),
            None => Jobs::auto(),
        }
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0.get()
    }
}

impl Default for Jobs {
    /// Defaults to [`Jobs::auto`].
    fn default() -> Jobs {
        Jobs::auto()
    }
}

/// Runs `f(0)..f(count)` on up to `jobs` workers and returns the
/// results in index (replication) order.
///
/// With one worker (or one replication) everything runs inline on the
/// calling thread. Otherwise workers pull the next unclaimed index from
/// a shared counter — coarse-grained work stealing, which keeps long
/// and short replications balanced — and deposit each result in its
/// own slot, so the returned vector is always `[f(0), f(1), …]`
/// regardless of completion order.
///
/// # Panics
///
/// Propagates a panic from any replication (the scope joins every
/// worker first).
pub fn par_map<T, F>(jobs: Jobs, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs.get().min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let value = f(index);
                *slots[index].lock().expect("unpoisoned replication slot") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("unpoisoned replication slot")
                .expect("every replication index was claimed and completed")
        })
        .collect()
}

/// [`par_map`] over a slice: runs `f(i, &items[i])` for every item and
/// returns the results in item order.
pub fn par_map_slice<'a, I, T, F>(jobs: Jobs, items: &'a [I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &'a I) -> T + Sync,
{
    par_map(jobs, items.len(), |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MasterSeed;

    #[test]
    fn serial_and_parallel_agree() {
        let seed = MasterSeed::new(11);
        let work = |i: usize| {
            let mut rng = seed.indexed_stream("rep", i as u64);
            (0..1_000).map(|_| rng.next_u64() >> 32).sum::<u64>()
        };
        let serial = par_map(Jobs::serial(), 17, work);
        for jobs in [2, 3, 4, 8, 32] {
            assert_eq!(par_map(Jobs::new(jobs), 17, work), serial, "jobs {jobs}");
        }
    }

    #[test]
    fn results_are_in_replication_order() {
        let out = par_map(Jobs::new(4), 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_counts() {
        assert_eq!(par_map(Jobs::new(4), 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(Jobs::new(4), 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn slice_variant_passes_items() {
        let items = ["a", "bb", "ccc"];
        let lens = par_map_slice(Jobs::new(2), &items, |i, s| (i, s.len()));
        assert_eq!(lens, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(par_map(Jobs::new(64), 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn jobs_constructors() {
        assert_eq!(Jobs::serial().get(), 1);
        assert_eq!(Jobs::new(0).get(), 1);
        assert_eq!(Jobs::new(6).get(), 6);
        assert_eq!(Jobs::from_request(Some(3)).get(), 3);
        assert!(Jobs::from_request(None).get() >= 1);
        assert!(Jobs::default().get() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map(Jobs::new(2), 8, |i| {
                if i == 5 {
                    panic!("replication 5 exploded");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
