//! Streaming statistics.
//!
//! The monitoring subsystem records per-release execution times and outcome
//! counts on every demand; these collectors do that in O(1) per observation
//! using Welford's algorithm for mean/variance.

use std::fmt;

/// Streaming mean/variance/min/max over `f64` observations.
///
/// # Example
///
/// ```
/// use wsu_simcore::stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), Some(1.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "cannot record non-finite value {x}");
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of the observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample variance (n−1 denominator); 0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.mean += delta * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean,
            self.std_dev(),
            self.min.unwrap_or(f64::NAN),
            self.max.unwrap_or(f64::NAN)
        )
    }
}

/// A counter keyed by a small enum-like index.
///
/// Used for outcome tallies (correct / evident / non-evident / no-response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountTable {
    counts: Vec<u64>,
    labels: Vec<&'static str>,
}

impl CountTable {
    /// Creates a table with the given class labels, all counts zero.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty.
    pub fn new(labels: &[&'static str]) -> CountTable {
        assert!(!labels.is_empty(), "CountTable needs at least one class");
        CountTable {
            counts: vec![0; labels.len()],
            labels: labels.to_vec(),
        }
    }

    /// Increments class `i` by one.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bump(&mut self, i: usize) {
        self.counts[i] += 1;
    }

    /// Count of class `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total across classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of the total in class `i` (0 when empty).
    pub fn fraction(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / total as f64
        }
    }

    /// The labels this table was created with.
    pub fn labels(&self) -> &[&'static str] {
        &self.labels
    }

    /// Iterates `(label, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.labels.iter().copied().zip(self.counts.iter().copied())
    }
}

/// A fixed-width histogram over `[low, high)` with overflow/underflow bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or `bins == 0`.
    pub fn new(low: f64, high: f64, bins: usize) -> Histogram {
        assert!(low < high, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            low,
            high,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            let w = (self.high - self.low) / self.bins.len() as f64;
            let idx = ((x - self.low) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) from bin midpoints.
    ///
    /// Returns `None` if the histogram is empty or the quantile falls in
    /// the overflow region.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} not in [0, 1]");
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.low);
        }
        let w = (self.high - self.low) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.low + w * (i as f64 + 0.5));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_and_variance() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic data set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn summary_merge_equals_combined_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() + 2.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.record(1.0);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn summary_rejects_nan() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn summary_display_nonempty() {
        let mut s = Summary::new();
        s.record(1.0);
        assert!(s.to_string().contains("n=1"));
    }

    #[test]
    fn count_table_basics() {
        let mut t = CountTable::new(&["cr", "er", "ner"]);
        t.bump(0);
        t.bump(0);
        t.bump(2);
        assert_eq!(t.count(0), 2);
        assert_eq!(t.total(), 3);
        assert!((t.fraction(0) - 2.0 / 3.0).abs() < 1e-12);
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![("cr", 2), ("er", 0), ("ner", 1)]);
        assert_eq!(t.labels(), &["cr", "er", "ner"]);
    }

    #[test]
    fn count_table_empty_fraction() {
        let t = CountTable::new(&["a"]);
        assert_eq!(t.fraction(0), 0.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.5);
        h.record(9.99);
        h.record(10.0);
        h.record(25.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin(0), 1);
        assert_eq!(h.bin(9), 1);
        assert_eq!(h.total(), 5);
        assert_eq!(h.bin_count(), 10);
    }

    #[test]
    fn histogram_quantile_is_monotone() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        for i in 0..1000 {
            h.record(i as f64 / 1000.0);
        }
        let q10 = h.quantile(0.1).unwrap();
        let q50 = h.quantile(0.5).unwrap();
        let q90 = h.quantile(0.9).unwrap();
        assert!(q10 < q50 && q50 < q90);
        assert!((q50 - 0.5).abs() < 0.02);
    }

    #[test]
    fn histogram_quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }
}
