//! Virtual time for the discrete-event engine.
//!
//! Time is modelled as `f64` seconds, which matches the paper's simulation
//! parameters (`T1Mean = 0.7 sec`, `TimeOut = 1.5 sec`, …). The newtypes
//! [`SimTime`] (an instant) and [`SimDuration`] (a span) keep the two roles
//! statically distinct and provide the total ordering an event queue needs.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in virtual time, in seconds since the start of the simulation.
///
/// `SimTime` is totally ordered (NaN is rejected at construction), so it can
/// key an event queue.
///
/// # Example
///
/// ```
/// use wsu_simcore::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(1.5);
/// assert!(t > SimTime::ZERO);
/// assert_eq!(t.as_secs(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

/// A span of virtual time, in seconds.
///
/// Durations are non-negative; see [`SimDuration::from_secs`].
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant `secs` seconds after the simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    pub fn from_secs(secs: f64) -> SimTime {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Returns the instant as seconds since the simulation start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: {earlier:?} is later than {self:?}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a span of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    pub fn from_secs(secs: f64) -> SimDuration {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration must be finite and non-negative, got {secs}"
        );
        SimDuration(secs)
    }

    /// Returns the span in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Construction forbids NaN, so total_cmp agrees with partial_cmp.
        self.0.total_cmp(&other.0)
    }
}

impl Eq for SimDuration {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration_advances() {
        let t = SimTime::from_secs(1.0) + SimDuration::from_secs(0.5);
        assert_eq!(t, SimTime::from_secs(1.5));
    }

    #[test]
    fn duration_since_is_inverse_of_add() {
        let base = SimTime::from_secs(2.0);
        let d = SimDuration::from_secs(3.25);
        assert_eq!((base + d).duration_since(base), d);
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_secs(2.0) * 1.5;
        assert_eq!(d, SimDuration::from_secs(3.0));
        assert_eq!(d / 2.0, SimDuration::from_secs(1.5));
        assert_eq!(
            SimDuration::from_secs(1.0) + SimDuration::from_secs(0.5),
            SimDuration::from_secs(1.5)
        );
    }

    #[test]
    fn min_max_of_durations() {
        let a = SimDuration::from_secs(1.0);
        let b = SimDuration::from_secs(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_duration_rejected() {
        let _ = SimDuration::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn duration_since_rejects_backwards() {
        let _ = SimTime::from_secs(1.0).duration_since(SimTime::from_secs(2.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
        assert_eq!(SimDuration::from_secs(0.25).to_string(), "0.250s");
        assert!(!format!("{:?}", SimTime::ZERO).is_empty());
        assert!(!format!("{:?}", SimDuration::ZERO).is_empty());
    }
}
