//! Parsing the XML-like wire format back into [`Envelope`]s.
//!
//! [`Envelope::to_xml_like`] renders messages for logs and traces; this
//! module provides the inverse, so traces can be replayed and the
//! protocol handlers of Section 6.2 can be demonstrated over "wire" text
//! rather than in-process values. The grammar is exactly the subset
//! `to_xml_like` emits — this is deliberately not a general XML parser.

use std::fmt;

use crate::message::{Envelope, Fault, FaultCode, Value};

/// Error from parsing wire text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    line: usize,
    what: String,
}

impl ParseError {
    fn new(line: usize, what: impl Into<String>) -> ParseError {
        ParseError {
            line,
            what: what.into(),
        }
    }

    /// The 1-based line the error was detected on.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for ParseError {}

/// Extracts the value of `attr="..."` from a tag line.
fn attr<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("{name}=\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extracts the text content between `>` and `</` on a single line.
fn text_content(line: &str) -> Option<&str> {
    let open_end = line.find('>')?;
    let close_start = line.rfind("</")?;
    if close_start <= open_end {
        return None;
    }
    Some(&line[open_end + 1..close_start])
}

/// The element name of an opening tag line (`<name ...>` or `<name>`).
fn element_name(line: &str) -> Option<&str> {
    let rest = line.strip_prefix('<')?;
    let end = rest.find([' ', '>'])?;
    Some(&rest[..end])
}

fn parse_value(type_name: &str, text: &str, line_no: usize) -> Result<Value, ParseError> {
    match type_name {
        "s:int" => text
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| ParseError::new(line_no, format!("bad int `{text}`: {e}"))),
        "s:double" => text
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|e| ParseError::new(line_no, format!("bad double `{text}`: {e}"))),
        "s:boolean" => match text {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            other => Err(ParseError::new(line_no, format!("bad boolean `{other}`"))),
        },
        "s:string" => Ok(Value::Str(text.to_owned())),
        other => Err(ParseError::new(
            line_no,
            format!("unsupported part type `{other}`"),
        )),
    }
}

fn parse_fault_code(code: &str, line_no: usize) -> Result<FaultCode, ParseError> {
    match code {
        "Receiver" => Ok(FaultCode::Receiver),
        "Sender" => Ok(FaultCode::Sender),
        "Timeout" => Ok(FaultCode::Timeout),
        "ServiceUnavailable" => Ok(FaultCode::ServiceUnavailable),
        other => Err(ParseError::new(
            line_no,
            format!("unknown fault code `{other}`"),
        )),
    }
}

/// Parses the output of [`Envelope::to_xml_like`] back into an
/// [`Envelope`].
///
/// # Errors
///
/// Returns [`ParseError`] on any structural or type deviation from the
/// emitted grammar.
pub fn parse_envelope(wire: &str) -> Result<Envelope, ParseError> {
    let mut operation: Option<String> = None;
    let mut fault: Option<Fault> = None;
    let mut parts: Vec<(String, Value)> = Vec::new();

    for (idx, raw) in wire.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line == "<Envelope>" || line == "</Envelope>" || line == "</Body>" {
            continue;
        }
        if line.starts_with("<Body") {
            let op = attr(line, "operation")
                .ok_or_else(|| ParseError::new(line_no, "Body without operation"))?;
            operation = Some(op.to_owned());
            continue;
        }
        if line.starts_with("<Fault") {
            let code =
                attr(line, "code").ok_or_else(|| ParseError::new(line_no, "Fault without code"))?;
            let reason = text_content(line)
                .ok_or_else(|| ParseError::new(line_no, "Fault without reason text"))?;
            fault = Some(Fault::new(parse_fault_code(code, line_no)?, reason));
            continue;
        }
        if line.starts_with('<') && !line.starts_with("</") {
            let name = element_name(line)
                .ok_or_else(|| ParseError::new(line_no, "malformed element"))?
                .to_owned();
            let type_name = attr(line, "type")
                .ok_or_else(|| ParseError::new(line_no, format!("part `{name}` without type")))?;
            let text = text_content(line).ok_or_else(|| {
                ParseError::new(line_no, format!("part `{name}` without content"))
            })?;
            parts.push((name, parse_value(type_name, text, line_no)?));
            continue;
        }
        return Err(ParseError::new(
            line_no,
            format!("unexpected line `{line}`"),
        ));
    }

    let operation =
        operation.ok_or_else(|| ParseError::new(wire.lines().count(), "no <Body> element"))?;
    let mut envelope = match fault {
        Some(f) => Envelope::fault(operation, f),
        None => Envelope::response(operation),
    };
    for (name, value) in parts {
        envelope.set_part(name, value);
    }
    Ok(envelope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_data_response() {
        let original = Envelope::response("operation1")
            .with_part("Op1Result", "ok")
            .with_part("count", 42i64)
            .with_part("Operation1Conf", 0.97)
            .with_part("cached", false);
        let parsed = parse_envelope(&original.to_xml_like()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn round_trips_a_fault() {
        for code in [
            FaultCode::Receiver,
            FaultCode::Sender,
            FaultCode::Timeout,
            FaultCode::ServiceUnavailable,
        ] {
            let original = Envelope::fault("pay", Fault::new(code, "broken pipe"));
            let parsed = parse_envelope(&original.to_xml_like()).unwrap();
            assert_eq!(parsed, original);
        }
    }

    #[test]
    fn round_trips_empty_body() {
        let original = Envelope::request("ping");
        let parsed = parse_envelope(&original.to_xml_like()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn rejects_missing_body() {
        let err = parse_envelope("<Envelope>\n</Envelope>").unwrap_err();
        assert!(err.to_string().contains("no <Body>"));
    }

    #[test]
    fn rejects_bad_int() {
        let wire = "<Envelope>\n  <Body operation=\"op\">\n    <n type=\"s:int\">forty</n>\n  </Body>\n</Envelope>";
        let err = parse_envelope(wire).unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("bad int"));
    }

    #[test]
    fn rejects_unknown_type() {
        let wire = "<Envelope>\n  <Body operation=\"op\">\n    <n type=\"s:blob\">x</n>\n  </Body>\n</Envelope>";
        assert!(parse_envelope(wire).is_err());
    }

    #[test]
    fn rejects_unknown_fault_code() {
        let wire = "<Envelope>\n  <Body operation=\"op\">\n    <Fault code=\"Gremlins\">x</Fault>\n  </Body>\n</Envelope>";
        assert!(parse_envelope(wire).is_err());
    }

    #[test]
    fn rejects_part_without_type() {
        let wire = "<Envelope>\n  <Body operation=\"op\">\n    <n>5</n>\n  </Body>\n</Envelope>";
        let err = parse_envelope(wire).unwrap_err();
        assert!(err.to_string().contains("without type"));
    }

    #[test]
    fn boolean_values_parse_strictly() {
        let wire = "<Envelope>\n  <Body operation=\"op\">\n    <b type=\"s:boolean\">TRUE</b>\n  </Body>\n</Envelope>";
        assert!(parse_envelope(wire).is_err());
        let ok = "<Envelope>\n  <Body operation=\"op\">\n    <b type=\"s:boolean\">true</b>\n  </Body>\n</Envelope>";
        let parsed = parse_envelope(ok).unwrap();
        assert_eq!(parsed.part("b"), Some(&Value::Bool(true)));
    }

    #[test]
    fn confidence_survives_the_wire() {
        // The §6.2 protocol-handler path over actual wire text.
        let response = Envelope::response("operation1").with_part("Op1Result", "ok");
        let with_conf = response.clone().with_part("Operation1Conf", 0.93);
        let wire = with_conf.to_xml_like();
        let parsed = parse_envelope(&wire).unwrap();
        assert_eq!(
            parsed.part("Operation1Conf").and_then(Value::as_double),
            Some(0.93)
        );
    }
}
