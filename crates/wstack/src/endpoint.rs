//! Service endpoints: where demands are actually executed.
//!
//! [`ServiceEndpoint`] is the abstraction the upgrade middleware relays
//! requests to. Two simulation-oriented implementations are provided:
//!
//! * [`SyntheticService`] samples each response independently from an
//!   [`OutcomeProfile`] and an execution-time model (the *independent
//!   releases* assumption of the paper's Table 6);
//! * [`ScriptedEndpoint`] replays a pre-planned sequence of invocations,
//!   which is how the *correlated releases* model (Tables 3–5) is driven:
//!   the workload generator plans both releases' outcomes jointly and
//!   feeds each release its half of the plan.

use std::collections::VecDeque;
use std::rc::Rc;

use wsu_simcore::dist::DelayModel;
use wsu_simcore::rng::StreamRng;
use wsu_simcore::time::SimDuration;

use crate::message::{Envelope, Fault, FaultCode};
use crate::outcome::{OutcomeProfile, ResponseClass};
use crate::wsdl::{Operation, ServiceDescription, XsdType};

/// The result of invoking an endpoint once.
///
/// `class` is the *ground truth* of this response — whether it is correct,
/// evidently wrong or non-evidently wrong. Ground truth is visible to the
/// simulation harness and to failure detectors (which observe it with
/// configurable imperfection), never to the adjudicating middleware except
/// through a detector.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// Ground-truth classification of the response.
    pub class: ResponseClass,
    /// How long the release took to produce the response.
    pub exec_time: SimDuration,
    /// The response message itself. Shared (`Rc`) so simulation
    /// endpoints can hand out pooled template envelopes without copying
    /// the body per demand; equality compares envelope contents.
    pub response: Rc<Envelope>,
}

impl Invocation {
    /// Creates an invocation result, synthesising a fresh response
    /// envelope appropriate for the class. The slow path — endpoints in
    /// the demand loop reuse [`ResponseTemplates`] instead.
    pub fn from_class(operation: &str, class: ResponseClass, exec_time: SimDuration) -> Invocation {
        Invocation {
            class,
            exec_time,
            response: Rc::new(synthesise_response(operation, class)),
        }
    }
}

/// Builds the class-appropriate response envelope for `operation`.
fn synthesise_response(operation: &str, class: ResponseClass) -> Envelope {
    match class {
        ResponseClass::Correct => Envelope::response(operation).with_part("result", "ok"),
        ResponseClass::EvidentFailure => Envelope::fault(
            operation,
            Fault::new(FaultCode::Receiver, "internal service error"),
        ),
        // A non-evident failure *looks* like a success on the wire.
        ResponseClass::NonEvidentFailure => {
            Envelope::response(operation).with_part("result", "plausible-but-wrong")
        }
    }
}

/// A per-endpoint pool of the three class-synthesised response
/// envelopes for one operation.
///
/// The envelopes are built once (per operation seen — rebuilding only
/// when the operation changes, which simulation workloads never do) and
/// handed out as shared [`Rc`]s, so the steady-state invoke path costs
/// a reference-count bump instead of an envelope construction.
#[derive(Debug, Clone, Default)]
pub struct ResponseTemplates {
    operation: String,
    templates: Option<[Rc<Envelope>; 3]>,
}

impl ResponseTemplates {
    /// An empty pool; templates are built on first use.
    pub fn new() -> ResponseTemplates {
        ResponseTemplates::default()
    }

    fn rebuild(&mut self, operation: &str) {
        self.operation.clear();
        self.operation.push_str(operation);
        self.templates = Some([
            Rc::new(synthesise_response(operation, ResponseClass::Correct)),
            Rc::new(synthesise_response(
                operation,
                ResponseClass::EvidentFailure,
            )),
            Rc::new(synthesise_response(
                operation,
                ResponseClass::NonEvidentFailure,
            )),
        ]);
    }

    /// An invocation result whose response envelope is the pooled
    /// template for `class` (identical content to
    /// [`Invocation::from_class`]).
    pub fn invocation(
        &mut self,
        operation: &str,
        class: ResponseClass,
        exec_time: SimDuration,
    ) -> Invocation {
        if self.templates.is_none() || self.operation != operation {
            self.rebuild(operation);
        }
        let templates = self.templates.as_ref().expect("templates built");
        let response = Rc::clone(match class {
            ResponseClass::Correct => &templates[0],
            ResponseClass::EvidentFailure => &templates[1],
            ResponseClass::NonEvidentFailure => &templates[2],
        });
        Invocation {
            class,
            exec_time,
            response,
        }
    }
}

/// A service that can be invoked by the middleware.
pub trait ServiceEndpoint {
    /// The service's published description.
    fn describe(&self) -> &ServiceDescription;

    /// Executes one request, returning the (ground-truth-classified)
    /// response and how long it took.
    fn invoke(&mut self, request: &Envelope, rng: &mut StreamRng) -> Invocation;

    /// Informs the endpoint of the current virtual time, in seconds.
    ///
    /// The upgrade middleware calls this before dispatching each demand.
    /// Most endpoints are clockless and ignore it; wrappers with
    /// time-dependent behaviour (e.g. fault injectors with virtual-time
    /// windows) consume it and forward it to the endpoint they wrap.
    fn advance_clock(&mut self, _now_secs: f64) {}
}

/// A synthetic service sampling outcomes and timings independently on
/// every demand.
#[derive(Debug, Clone)]
pub struct SyntheticService {
    description: ServiceDescription,
    outcomes: OutcomeProfile,
    exec_time: DelayModel,
    invocations: u64,
    templates: ResponseTemplates,
}

impl SyntheticService {
    /// Starts building a synthetic service with the given name and
    /// release string.
    pub fn builder(service: &str, release: &str) -> SyntheticServiceBuilder {
        SyntheticServiceBuilder {
            service: service.to_owned(),
            release: release.to_owned(),
            outcomes: OutcomeProfile::always_correct(),
            exec_time: DelayModel::exponential(1.0),
            operations: Vec::new(),
        }
    }

    /// Number of invocations served so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// The outcome profile this service samples from.
    pub fn outcomes(&self) -> OutcomeProfile {
        self.outcomes
    }
}

impl ServiceEndpoint for SyntheticService {
    fn describe(&self) -> &ServiceDescription {
        &self.description
    }

    fn invoke(&mut self, request: &Envelope, rng: &mut StreamRng) -> Invocation {
        self.invocations += 1;
        let class = self.outcomes.sample(rng);
        let exec_time = self.exec_time.sample(rng);
        self.templates
            .invocation(request.operation(), class, exec_time)
    }
}

/// Builder for [`SyntheticService`].
#[derive(Debug, Clone)]
pub struct SyntheticServiceBuilder {
    service: String,
    release: String,
    outcomes: OutcomeProfile,
    exec_time: DelayModel,
    operations: Vec<Operation>,
}

impl SyntheticServiceBuilder {
    /// Sets the outcome profile (defaults to always correct).
    pub fn outcomes(mut self, outcomes: OutcomeProfile) -> Self {
        self.outcomes = outcomes;
        self
    }

    /// Sets an exponential execution-time model with the given mean
    /// seconds (defaults to mean 1.0).
    pub fn exec_time_mean(mut self, mean_secs: f64) -> Self {
        self.exec_time = DelayModel::exponential(mean_secs);
        self
    }

    /// Sets an arbitrary execution-time model.
    pub fn exec_time(mut self, model: DelayModel) -> Self {
        self.exec_time = model;
        self
    }

    /// Adds a published operation (defaults to a single generic
    /// `invoke(payload) -> result` operation if none are added).
    pub fn operation(mut self, op: Operation) -> Self {
        self.operations.push(op);
        self
    }

    /// Builds the service.
    pub fn build(self) -> SyntheticService {
        let mut description = ServiceDescription::new(self.service, self.release);
        if self.operations.is_empty() {
            description.add_operation(
                Operation::new("invoke")
                    .with_input("payload", XsdType::Str)
                    .with_output("result", XsdType::Str),
            );
        } else {
            for op in self.operations {
                description.add_operation(op);
            }
        }
        SyntheticService {
            description,
            outcomes: self.outcomes,
            exec_time: self.exec_time,
            invocations: 0,
            templates: ResponseTemplates::new(),
        }
    }
}

/// A planned response, queued into a [`ScriptedEndpoint`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedResponse {
    /// Ground-truth classification the endpoint must produce.
    pub class: ResponseClass,
    /// Execution time the endpoint must take.
    pub exec_time: SimDuration,
}

/// An endpoint that replays pre-planned responses in order.
///
/// Used when outcomes of several releases must be sampled *jointly* (the
/// correlated model of Table 4): the workload generator plans the pair,
/// then pushes each half into the corresponding scripted endpoint.
///
/// # Example
///
/// ```
/// use wsu_simcore::rng::StreamRng;
/// use wsu_simcore::time::SimDuration;
/// use wsu_wstack::endpoint::{PlannedResponse, ScriptedEndpoint, ServiceEndpoint};
/// use wsu_wstack::message::Envelope;
/// use wsu_wstack::outcome::ResponseClass;
///
/// let mut ep = ScriptedEndpoint::new("Svc", "1.0");
/// ep.push(PlannedResponse {
///     class: ResponseClass::Correct,
///     exec_time: SimDuration::from_secs(0.5),
/// });
/// let mut rng = StreamRng::from_seed(0);
/// let inv = ep.invoke(&Envelope::request("invoke"), &mut rng);
/// assert_eq!(inv.class, ResponseClass::Correct);
/// assert_eq!(inv.exec_time, SimDuration::from_secs(0.5));
/// ```
#[derive(Debug, Clone)]
pub struct ScriptedEndpoint {
    description: ServiceDescription,
    plan: VecDeque<PlannedResponse>,
    served: u64,
    templates: ResponseTemplates,
}

impl ScriptedEndpoint {
    /// Creates an endpoint with an empty plan.
    pub fn new(service: &str, release: &str) -> ScriptedEndpoint {
        let mut description = ServiceDescription::new(service, release);
        description.add_operation(
            Operation::new("invoke")
                .with_input("payload", XsdType::Str)
                .with_output("result", XsdType::Str),
        );
        ScriptedEndpoint {
            description,
            plan: VecDeque::new(),
            served: 0,
            templates: ResponseTemplates::new(),
        }
    }

    /// Queues one planned response.
    pub fn push(&mut self, planned: PlannedResponse) {
        self.plan.push_back(planned);
    }

    /// Queues many planned responses.
    pub fn extend(&mut self, planned: impl IntoIterator<Item = PlannedResponse>) {
        self.plan.extend(planned);
    }

    /// Number of responses not yet served.
    pub fn remaining(&self) -> usize {
        self.plan.len()
    }

    /// Number of invocations served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

impl ServiceEndpoint for ScriptedEndpoint {
    fn describe(&self) -> &ServiceDescription {
        &self.description
    }

    /// # Panics
    ///
    /// Panics if the plan is exhausted — a scripted simulation must plan
    /// exactly as many demands as it issues.
    fn invoke(&mut self, request: &Envelope, _rng: &mut StreamRng) -> Invocation {
        let planned = self
            .plan
            .pop_front()
            .expect("scripted endpoint plan exhausted");
        self.served += 1;
        self.templates
            .invocation(request.operation(), planned.class, planned.exec_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_service_describes_itself() {
        let svc = SyntheticService::builder("Quote", "2.0").build();
        assert_eq!(svc.describe().service(), "Quote");
        assert_eq!(svc.describe().release(), "2.0");
        assert!(svc.describe().operation("invoke").is_some());
    }

    #[test]
    fn synthetic_service_custom_operations() {
        let svc = SyntheticService::builder("Quote", "1.0")
            .operation(Operation::new("getQuote").with_output("quote", XsdType::Double))
            .build();
        assert!(svc.describe().operation("getQuote").is_some());
        assert!(svc.describe().operation("invoke").is_none());
    }

    #[test]
    fn synthetic_service_counts_invocations() {
        let mut svc = SyntheticService::builder("S", "1.0").build();
        let mut rng = StreamRng::from_seed(1);
        let req = Envelope::request("invoke");
        for _ in 0..5 {
            svc.invoke(&req, &mut rng);
        }
        assert_eq!(svc.invocations(), 5);
    }

    #[test]
    fn synthetic_outcomes_follow_profile() {
        let mut svc = SyntheticService::builder("S", "1.0")
            .outcomes(OutcomeProfile::new(0.5, 0.25, 0.25))
            .build();
        let mut rng = StreamRng::from_seed(2);
        let req = Envelope::request("invoke");
        let n = 40_000;
        let correct = (0..n)
            .filter(|_| svc.invoke(&req, &mut rng).class == ResponseClass::Correct)
            .count();
        assert!((correct as f64 / n as f64 - 0.5).abs() < 0.02);
        assert_eq!(svc.outcomes().correct(), 0.5);
    }

    #[test]
    fn invocation_envelope_matches_class() {
        let d = SimDuration::from_secs(0.1);
        let ok = Invocation::from_class("op", ResponseClass::Correct, d);
        assert!(!ok.response.is_fault());
        let evident = Invocation::from_class("op", ResponseClass::EvidentFailure, d);
        assert!(evident.response.is_fault());
        // Non-evident failures look valid on the wire.
        let sneaky = Invocation::from_class("op", ResponseClass::NonEvidentFailure, d);
        assert!(!sneaky.response.is_fault());
    }

    #[test]
    fn scripted_endpoint_replays_in_order() {
        let mut ep = ScriptedEndpoint::new("S", "1.0");
        ep.extend([
            PlannedResponse {
                class: ResponseClass::Correct,
                exec_time: SimDuration::from_secs(0.1),
            },
            PlannedResponse {
                class: ResponseClass::NonEvidentFailure,
                exec_time: SimDuration::from_secs(0.2),
            },
        ]);
        assert_eq!(ep.remaining(), 2);
        let mut rng = StreamRng::from_seed(3);
        let req = Envelope::request("invoke");
        assert_eq!(ep.invoke(&req, &mut rng).class, ResponseClass::Correct);
        let second = ep.invoke(&req, &mut rng);
        assert_eq!(second.class, ResponseClass::NonEvidentFailure);
        assert_eq!(second.exec_time, SimDuration::from_secs(0.2));
        assert_eq!(ep.remaining(), 0);
        assert_eq!(ep.served(), 2);
    }

    #[test]
    #[should_panic(expected = "plan exhausted")]
    fn scripted_endpoint_panics_when_drained() {
        let mut ep = ScriptedEndpoint::new("S", "1.0");
        let mut rng = StreamRng::from_seed(4);
        ep.invoke(&Envelope::request("invoke"), &mut rng);
    }

    #[test]
    fn exec_time_mean_is_respected() {
        let mut svc = SyntheticService::builder("S", "1.0")
            .exec_time_mean(0.7)
            .build();
        let mut rng = StreamRng::from_seed(5);
        let req = Envelope::request("invoke");
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| svc.invoke(&req, &mut rng).exec_time.as_secs())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.7).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn constant_exec_time_model() {
        let mut svc = SyntheticService::builder("S", "1.0")
            .exec_time(DelayModel::constant(0.25))
            .build();
        let mut rng = StreamRng::from_seed(6);
        let inv = svc.invoke(&Envelope::request("invoke"), &mut rng);
        assert_eq!(inv.exec_time.as_secs(), 0.25);
    }
}
