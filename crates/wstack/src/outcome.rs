//! The paper's response taxonomy (Section 2.1).
//!
//! On each demand a Web Service release may return a **correct** response,
//! an **evident failure** (an exception, a denial of service, or no
//! response within a timeout — detectable by generic means), or a
//! **non-evident failure** (a plausible but wrong answer — detectable only
//! through application-level redundancy such as running releases
//! back-to-back).

use std::fmt;

use wsu_simcore::rng::StreamRng;

/// How a single release responded to one demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponseClass {
    /// The response satisfied the specification ("CR" in the paper's
    /// tables).
    Correct,
    /// A failure that needs no special means to be detected — an
    /// exception or an obviously malformed response ("ER").
    EvidentFailure,
    /// A plausible but incorrect response, detectable only via redundancy
    /// ("NER").
    NonEvidentFailure,
}

impl ResponseClass {
    /// All classes, in the paper's table order (CR, ER, NER).
    pub const ALL: [ResponseClass; 3] = [
        ResponseClass::Correct,
        ResponseClass::EvidentFailure,
        ResponseClass::NonEvidentFailure,
    ];

    /// Returns `true` for either failure class.
    pub fn is_failure(self) -> bool {
        self != ResponseClass::Correct
    }

    /// Returns `true` if the response is *valid* in the adjudicator's
    /// sense: not evidently incorrect (correct or non-evident failure).
    pub fn is_valid(self) -> bool {
        self != ResponseClass::EvidentFailure
    }

    /// Stable index into per-class tables (CR=0, ER=1, NER=2).
    pub fn index(self) -> usize {
        match self {
            ResponseClass::Correct => 0,
            ResponseClass::EvidentFailure => 1,
            ResponseClass::NonEvidentFailure => 2,
        }
    }

    /// Inverse of [`index`](ResponseClass::index).
    ///
    /// # Panics
    ///
    /// Panics if `i > 2`.
    pub fn from_index(i: usize) -> ResponseClass {
        ResponseClass::ALL[i]
    }

    /// The paper's abbreviation for the class.
    pub fn abbrev(self) -> &'static str {
        match self {
            ResponseClass::Correct => "CR",
            ResponseClass::EvidentFailure => "ER",
            ResponseClass::NonEvidentFailure => "NER",
        }
    }
}

impl fmt::Display for ResponseClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Marginal probabilities of the three response classes for one release
/// (one row of the paper's Table 3).
///
/// # Example
///
/// ```
/// use wsu_wstack::outcome::OutcomeProfile;
///
/// // Release 1 of every run in Table 3.
/// let p = OutcomeProfile::new(0.70, 0.15, 0.15);
/// assert_eq!(p.correct(), 0.70);
/// assert!((p.failure_probability() - 0.30).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutcomeProfile {
    correct: f64,
    evident: f64,
    non_evident: f64,
}

impl OutcomeProfile {
    /// Creates a profile from the three class probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or they do not sum to
    /// 1 within `1e-9`.
    pub fn new(correct: f64, evident: f64, non_evident: f64) -> OutcomeProfile {
        for p in [correct, evident, non_evident] {
            assert!(
                (0.0..=1.0).contains(&p) && p.is_finite(),
                "probability {p} not in [0, 1]"
            );
        }
        let total = correct + evident + non_evident;
        assert!(
            (total - 1.0).abs() < 1e-9,
            "outcome probabilities must sum to 1, got {total}"
        );
        OutcomeProfile {
            correct,
            evident,
            non_evident,
        }
    }

    /// A profile that always responds correctly.
    pub fn always_correct() -> OutcomeProfile {
        OutcomeProfile::new(1.0, 0.0, 0.0)
    }

    /// Probability of a correct response.
    pub fn correct(self) -> f64 {
        self.correct
    }

    /// Probability of an evident failure.
    pub fn evident(self) -> f64 {
        self.evident
    }

    /// Probability of a non-evident failure.
    pub fn non_evident(self) -> f64 {
        self.non_evident
    }

    /// Probability of any failure.
    pub fn failure_probability(self) -> f64 {
        self.evident + self.non_evident
    }

    /// Probability of the given class.
    pub fn prob(self, class: ResponseClass) -> f64 {
        match class {
            ResponseClass::Correct => self.correct,
            ResponseClass::EvidentFailure => self.evident,
            ResponseClass::NonEvidentFailure => self.non_evident,
        }
    }

    /// The probabilities as a `[CR, ER, NER]` array.
    pub fn as_array(self) -> [f64; 3] {
        [self.correct, self.evident, self.non_evident]
    }

    /// Draws one response class.
    pub fn sample(self, rng: &mut StreamRng) -> ResponseClass {
        ResponseClass::from_index(rng.pick_weighted(&self.as_array()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(!ResponseClass::Correct.is_failure());
        assert!(ResponseClass::EvidentFailure.is_failure());
        assert!(ResponseClass::NonEvidentFailure.is_failure());
        assert!(ResponseClass::Correct.is_valid());
        assert!(!ResponseClass::EvidentFailure.is_valid());
        assert!(ResponseClass::NonEvidentFailure.is_valid());
    }

    #[test]
    fn index_round_trips() {
        for class in ResponseClass::ALL {
            assert_eq!(ResponseClass::from_index(class.index()), class);
        }
    }

    #[test]
    fn display_uses_paper_abbreviations() {
        assert_eq!(ResponseClass::Correct.to_string(), "CR");
        assert_eq!(ResponseClass::EvidentFailure.to_string(), "ER");
        assert_eq!(ResponseClass::NonEvidentFailure.to_string(), "NER");
    }

    #[test]
    fn profile_accessors() {
        let p = OutcomeProfile::new(0.6, 0.2, 0.2);
        assert_eq!(p.correct(), 0.6);
        assert_eq!(p.evident(), 0.2);
        assert_eq!(p.non_evident(), 0.2);
        assert!((p.failure_probability() - 0.4).abs() < 1e-12);
        assert_eq!(p.prob(ResponseClass::Correct), 0.6);
        assert_eq!(p.as_array(), [0.6, 0.2, 0.2]);
    }

    #[test]
    fn always_correct_profile() {
        let p = OutcomeProfile::always_correct();
        let mut rng = StreamRng::from_seed(1);
        for _ in 0..100 {
            assert_eq!(p.sample(&mut rng), ResponseClass::Correct);
        }
    }

    #[test]
    fn sampling_matches_marginals() {
        let p = OutcomeProfile::new(0.70, 0.15, 0.15);
        let mut rng = StreamRng::from_seed(2);
        let mut counts = [0u32; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[p.sample(&mut rng).index()] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.70).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.15).abs() < 0.005);
        assert!((counts[2] as f64 / n as f64 - 0.15).abs() < 0.005);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn profile_rejects_bad_sum() {
        let _ = OutcomeProfile::new(0.7, 0.2, 0.2);
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn profile_rejects_negative() {
        let _ = OutcomeProfile::new(-0.1, 0.55, 0.55);
    }
}
