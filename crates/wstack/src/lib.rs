//! Simulated Web-Service stack.
//!
//! The paper's system is built on the early-2000s WS technology stack:
//! SOAP messages, WSDL service descriptions and a UDDI registry. A real
//! wire-level stack is irrelevant to the evaluation (and the Rust WS-*
//! ecosystem is thin), so this crate provides an in-process, simulation-
//! friendly equivalent that preserves the semantics the paper exercises:
//!
//! * [`message`] — SOAP-like envelopes with typed parts and faults;
//! * [`outcome`] — the paper's response taxonomy (correct, evident
//!   failure, non-evident failure) from Section 2.1;
//! * [`wsdl`] — WSDL-like service descriptions, including the three
//!   confidence-publishing extensions of Section 6.2;
//! * [`registry`] — a UDDI-like registry with release links (the
//!   notification option of Section 7.2);
//! * [`endpoint`] — the [`endpoint::ServiceEndpoint`] abstraction plus
//!   synthetic and scripted implementations used by the simulations;
//! * [`retry`] — rollback-and-retry recovery for transient failures
//!   (Section 2.1's failure-mode taxonomy);
//! * [`transport`] — a simulated transport adding latency and loss;
//! * [`notify`] — WS-Notification-style upgrade announcements;
//! * [`soap`] — parsing the XML-like wire rendering back into envelopes.
//!
//! # Example
//!
//! ```
//! use wsu_simcore::rng::StreamRng;
//! use wsu_wstack::endpoint::{ServiceEndpoint, SyntheticService};
//! use wsu_wstack::message::Envelope;
//! use wsu_wstack::outcome::OutcomeProfile;
//!
//! let mut svc = SyntheticService::builder("Quote", "1.0")
//!     .outcomes(OutcomeProfile::new(0.7, 0.15, 0.15))
//!     .exec_time_mean(0.7)
//!     .build();
//! let mut rng = StreamRng::from_seed(9);
//! let invocation = svc.invoke(&Envelope::request("getQuote"), &mut rng);
//! assert!(invocation.exec_time.as_secs() >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod endpoint;
pub mod message;
pub mod notify;
pub mod outcome;
pub mod registry;
pub mod retry;
pub mod soap;
pub mod transport;
pub mod wsdl;

pub use endpoint::{Invocation, ServiceEndpoint, SyntheticService};
pub use message::{Envelope, Fault, Value};
pub use outcome::{OutcomeProfile, ResponseClass};
pub use registry::{Registry, ServiceRecord};
pub use retry::RetryingEndpoint;
pub use wsdl::ServiceDescription;
