//! Rollback-and-retry recovery for transient failures (paper
//! Section 2.1).
//!
//! > "Transient failure — a failure triggered by transient conditions
//! > which can be tolerated by using generic recovery techniques such as
//! > rollback and retry even if the same code is used. Non-transient
//! > failure — a deterministic failure. To tolerate such failure the
//! > diverse redundancy should be used."
//!
//! [`RetryingEndpoint`] wraps a service with exactly that generic
//! recovery: an *evident* failure triggers up to `max_retries` re-runs.
//! Whether a given failure is transient is decided per demand with the
//! configured probability; a non-transient (deterministic) failure
//! reproduces on the first retry, at which point recovery stops — the
//! reproduction proves further retries pointless, and it is precisely
//! why the managed-upgrade architecture needs the diverse redundancy of
//! a second release. Non-evident failures are never retried — nothing
//! detects them.

use wsu_simcore::dist::DelayModel;
use wsu_simcore::rng::StreamRng;

use crate::endpoint::{Invocation, ServiceEndpoint};
use crate::message::Envelope;
use crate::outcome::ResponseClass;
use crate::wsdl::ServiceDescription;

/// A retrying wrapper around a service endpoint.
#[derive(Debug, Clone)]
pub struct RetryingEndpoint<S> {
    inner: S,
    max_retries: u32,
    transient_fraction: f64,
    backoff: DelayModel,
    demands: u64,
    retries_attempted: u64,
    retries_recovered: u64,
}

impl<S: ServiceEndpoint> RetryingEndpoint<S> {
    /// Wraps `inner` with retry-based recovery.
    ///
    /// * `max_retries` — re-runs attempted after an evident failure;
    /// * `transient_fraction` — probability that an evident failure is
    ///   transient (a retry re-executes and may succeed) rather than
    ///   deterministic (the first retry reproduces it and recovery
    ///   stops);
    /// * `backoff` — delay added before each retry.
    ///
    /// # Panics
    ///
    /// Panics if `transient_fraction` is outside `[0, 1]`.
    pub fn new(
        inner: S,
        max_retries: u32,
        transient_fraction: f64,
        backoff: DelayModel,
    ) -> RetryingEndpoint<S> {
        assert!(
            (0.0..=1.0).contains(&transient_fraction),
            "transient fraction {transient_fraction} not in [0, 1]"
        );
        RetryingEndpoint {
            inner,
            max_retries,
            transient_fraction,
            backoff,
            demands: 0,
            retries_attempted: 0,
            retries_recovered: 0,
        }
    }

    /// Demands served.
    pub fn demands(&self) -> u64 {
        self.demands
    }

    /// Retries attempted so far.
    pub fn retries_attempted(&self) -> u64 {
        self.retries_attempted
    }

    /// Demands rescued by a retry (final response not an evident
    /// failure after at least one retry).
    pub fn retries_recovered(&self) -> u64 {
        self.retries_recovered
    }

    /// Access to the wrapped endpoint.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: ServiceEndpoint> ServiceEndpoint for RetryingEndpoint<S> {
    fn describe(&self) -> &ServiceDescription {
        self.inner.describe()
    }

    fn advance_clock(&mut self, now_secs: f64) {
        self.inner.advance_clock(now_secs);
    }

    fn invoke(&mut self, request: &Envelope, rng: &mut StreamRng) -> Invocation {
        self.demands += 1;
        let mut invocation = self.inner.invoke(request, rng);
        if invocation.class != ResponseClass::EvidentFailure || self.max_retries == 0 {
            return invocation;
        }
        // The failure's nature is a property of this demand: transient
        // conditions may clear on a retry, a deterministic fault will not.
        let transient = rng.bernoulli(self.transient_fraction);
        let mut total_time = invocation.exec_time;
        let mut retried = false;
        for _ in 0..self.max_retries {
            if invocation.class != ResponseClass::EvidentFailure {
                break;
            }
            self.retries_attempted += 1;
            retried = true;
            total_time += self.backoff.sample(rng);
            let again = self.inner.invoke(request, rng);
            total_time += again.exec_time;
            if transient {
                invocation = again;
            } else {
                // Deterministic failure: the retry re-executes the same
                // faulty path in comparable time and reproduces the
                // failure, which proves further retries pointless — stop
                // after the one reproducing retry instead of burning the
                // whole budget.
                invocation.class = ResponseClass::EvidentFailure;
                break;
            }
        }
        if retried && invocation.class != ResponseClass::EvidentFailure {
            self.retries_recovered += 1;
        }
        invocation.exec_time = total_time;
        invocation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::SyntheticService;
    use crate::outcome::OutcomeProfile;

    fn flaky(er: f64) -> SyntheticService {
        SyntheticService::builder("Svc", "1.0")
            .outcomes(OutcomeProfile::new(1.0 - er, er, 0.0))
            .exec_time(DelayModel::constant(0.1))
            .build()
    }

    fn evident_rate(endpoint: &mut impl ServiceEndpoint, n: u32, seed: u64) -> f64 {
        let mut rng = StreamRng::from_seed(seed);
        let request = Envelope::request("invoke");
        let failures = (0..n)
            .filter(|_| endpoint.invoke(&request, &mut rng).class == ResponseClass::EvidentFailure)
            .count();
        failures as f64 / n as f64
    }

    #[test]
    fn transient_failures_are_recovered() {
        // 20% evident failures, all transient, 3 retries: the surviving
        // failure rate is ~0.2^4 = 0.0016.
        let mut ep = RetryingEndpoint::new(flaky(0.2), 3, 1.0, DelayModel::constant(0.01));
        let rate = evident_rate(&mut ep, 20_000, 1);
        assert!(rate < 0.01, "rate {rate}");
        assert!(ep.retries_recovered() > 0);
        assert!(ep.retries_attempted() >= ep.retries_recovered());
    }

    #[test]
    fn deterministic_failures_are_not_recovered() {
        let mut ep = RetryingEndpoint::new(flaky(0.2), 3, 0.0, DelayModel::constant(0.01));
        let rate = evident_rate(&mut ep, 20_000, 2);
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
        assert_eq!(ep.retries_recovered(), 0);
        // Exactly one reproducing retry per failing demand, never the
        // whole budget: the failure rate is unchanged by retries, so the
        // failing-demand count is the surviving-failure count.
        assert_eq!(ep.retries_attempted(), (rate * 20_000.0).round() as u64);
    }

    #[test]
    fn deterministic_failure_retries_exactly_once() {
        // Always-failing deterministic service with a budget of 5: every
        // demand stops after the single reproducing retry.
        let inner = SyntheticService::builder("Svc", "1.0")
            .outcomes(OutcomeProfile::new(0.0, 1.0, 0.0))
            .exec_time(DelayModel::constant(0.1))
            .build();
        let mut ep = RetryingEndpoint::new(inner, 5, 0.0, DelayModel::constant(0.01));
        let mut rng = StreamRng::from_seed(7);
        let request = Envelope::request("invoke");
        for _ in 0..3 {
            let inv = ep.invoke(&request, &mut rng);
            assert_eq!(inv.class, ResponseClass::EvidentFailure);
        }
        assert_eq!(ep.demands(), 3);
        assert_eq!(ep.retries_attempted(), 3);
        assert_eq!(ep.retries_recovered(), 0);
    }

    #[test]
    fn persistent_transient_failure_exhausts_the_budget() {
        // Always-failing *transient* service: every retry re-executes
        // and fails again, so the whole budget is spent on each demand —
        // the contrast with the deterministic early stop above.
        let inner = SyntheticService::builder("Svc", "1.0")
            .outcomes(OutcomeProfile::new(0.0, 1.0, 0.0))
            .exec_time(DelayModel::constant(0.1))
            .build();
        let mut ep = RetryingEndpoint::new(inner, 3, 1.0, DelayModel::constant(0.01));
        let mut rng = StreamRng::from_seed(8);
        let request = Envelope::request("invoke");
        for _ in 0..3 {
            let inv = ep.invoke(&request, &mut rng);
            assert_eq!(inv.class, ResponseClass::EvidentFailure);
        }
        assert_eq!(ep.retries_attempted(), 9);
        assert_eq!(ep.retries_recovered(), 0);
    }

    #[test]
    fn mixed_transient_fraction() {
        // Half the failures transient: the recoverable half mostly
        // disappears, the deterministic half stays -> ~10% + residual.
        let mut ep = RetryingEndpoint::new(flaky(0.2), 3, 0.5, DelayModel::constant(0.01));
        let rate = evident_rate(&mut ep, 20_000, 3);
        assert!(rate > 0.08 && rate < 0.13, "rate {rate}");
    }

    #[test]
    fn zero_retries_is_a_passthrough() {
        let mut ep = RetryingEndpoint::new(flaky(0.2), 0, 1.0, DelayModel::constant(0.01));
        let rate = evident_rate(&mut ep, 20_000, 4);
        assert!((rate - 0.2).abs() < 0.01);
        assert_eq!(ep.retries_attempted(), 0);
    }

    #[test]
    fn non_evident_failures_are_never_retried() {
        let inner = SyntheticService::builder("Svc", "1.0")
            .outcomes(OutcomeProfile::new(0.0, 0.0, 1.0))
            .exec_time(DelayModel::constant(0.1))
            .build();
        let mut ep = RetryingEndpoint::new(inner, 5, 1.0, DelayModel::constant(0.01));
        let mut rng = StreamRng::from_seed(5);
        let inv = ep.invoke(&Envelope::request("invoke"), &mut rng);
        assert_eq!(inv.class, ResponseClass::NonEvidentFailure);
        assert_eq!(ep.retries_attempted(), 0);
        // No retries: the base execution time stands.
        assert!((inv.exec_time.as_secs() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn retry_time_accumulates() {
        // Always-failing deterministic service: the single reproducing
        // retry costs 2 executions + 1 backoff = 0.2 + 0.01, however
        // large the budget.
        let inner = SyntheticService::builder("Svc", "1.0")
            .outcomes(OutcomeProfile::new(0.0, 1.0, 0.0))
            .exec_time(DelayModel::constant(0.1))
            .build();
        let mut ep = RetryingEndpoint::new(inner, 2, 0.0, DelayModel::constant(0.01));
        let mut rng = StreamRng::from_seed(6);
        let inv = ep.invoke(&Envelope::request("invoke"), &mut rng);
        assert_eq!(inv.class, ResponseClass::EvidentFailure);
        assert!((inv.exec_time.as_secs() - 0.21).abs() < 1e-12);
    }

    #[test]
    fn accessors_and_description() {
        let ep = RetryingEndpoint::new(flaky(0.1), 1, 0.5, DelayModel::constant(0.0));
        assert_eq!(ep.describe().service(), "Svc");
        assert_eq!(ep.demands(), 0);
        assert_eq!(ep.inner().describe().release(), "1.0");
    }

    #[test]
    #[should_panic(expected = "transient fraction")]
    fn rejects_bad_fraction() {
        let _ = RetryingEndpoint::new(flaky(0.1), 1, 1.5, DelayModel::constant(0.0));
    }
}
