//! WSDL-like service descriptions.
//!
//! A [`ServiceDescription`] models the interface a WS publishes: named
//! operations with typed request and response parts. Section 6.2 of the
//! paper discusses three ways of *publishing confidence* through WSDL;
//! all three are implemented here as description transformers:
//!
//! 1. [`ServiceDescription::extend_response_with_confidence`] — append a
//!    confidence part to an operation's response (not backward
//!    compatible);
//! 2. [`ServiceDescription::add_confidence_operation`] — add a separate
//!    `OperationConf` operation that returns the confidence for a named
//!    operation (backward compatible, but needs a second invocation);
//! 3. [`ServiceDescription::add_paired_confidence_operation`] — add a new
//!    `<op>Conf` operation whose response carries both the result and the
//!    confidence (backward compatible; confidence-conscious consumers
//!    switch to it).

use std::fmt;

/// The simulated XSD types used in descriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XsdType {
    /// `s:int`
    Int,
    /// `s:double`
    Double,
    /// `s:string`
    Str,
    /// `s:boolean`
    Bool,
}

impl XsdType {
    /// The WSDL rendering of the type.
    pub fn name(self) -> &'static str {
        match self {
            XsdType::Int => "s:int",
            XsdType::Double => "s:double",
            XsdType::Str => "s:string",
            XsdType::Bool => "s:boolean",
        }
    }
}

impl fmt::Display for XsdType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, typed message part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Part {
    /// Part (element) name.
    pub name: String,
    /// Part type.
    pub ty: XsdType,
}

impl Part {
    /// Creates a part.
    pub fn new(name: impl Into<String>, ty: XsdType) -> Part {
        Part {
            name: name.into(),
            ty,
        }
    }
}

/// One published operation: request parts in, response parts out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    name: String,
    request: Vec<Part>,
    response: Vec<Part>,
}

impl Operation {
    /// Creates an operation with empty request and response messages.
    pub fn new(name: impl Into<String>) -> Operation {
        Operation {
            name: name.into(),
            request: Vec::new(),
            response: Vec::new(),
        }
    }

    /// Adds a request part (builder style).
    pub fn with_input(mut self, name: impl Into<String>, ty: XsdType) -> Operation {
        self.request.push(Part::new(name, ty));
        self
    }

    /// Adds a response part (builder style).
    pub fn with_output(mut self, name: impl Into<String>, ty: XsdType) -> Operation {
        self.response.push(Part::new(name, ty));
        self
    }

    /// The operation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The request parts.
    pub fn request_parts(&self) -> &[Part] {
        &self.request
    }

    /// The response parts.
    pub fn response_parts(&self) -> &[Part] {
        &self.response
    }

    /// Returns `true` if the response message carries a confidence part.
    pub fn publishes_confidence(&self) -> bool {
        self.response
            .iter()
            .any(|p| p.ty == XsdType::Double && p.name.ends_with("Conf"))
    }
}

/// A WSDL-like description of one service: a name, a release version
/// string, and a set of operations.
///
/// # Example
///
/// ```
/// use wsu_wstack::wsdl::{Operation, ServiceDescription, XsdType};
///
/// let mut wsdl = ServiceDescription::new("Quote", "1.0");
/// wsdl.add_operation(
///     Operation::new("operation1")
///         .with_input("param1", XsdType::Int)
///         .with_input("param2", XsdType::Str)
///         .with_output("Op1Result", XsdType::Str),
/// );
/// assert!(wsdl.operation("operation1").is_some());
///
/// // Publishing option 3 from the paper: a paired confidence operation.
/// wsdl.add_paired_confidence_operation("operation1").unwrap();
/// let paired = wsdl.operation("operation1Conf").unwrap();
/// assert!(paired.publishes_confidence());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDescription {
    service: String,
    release: String,
    operations: Vec<Operation>,
}

/// Error returned when a description transformation refers to a missing
/// or conflicting operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DescribeError {
    /// The named operation does not exist.
    NoSuchOperation(String),
    /// An operation with the would-be name already exists.
    DuplicateOperation(String),
}

impl fmt::Display for DescribeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescribeError::NoSuchOperation(op) => write!(f, "no such operation `{op}`"),
            DescribeError::DuplicateOperation(op) => {
                write!(f, "operation `{op}` already exists")
            }
        }
    }
}

impl std::error::Error for DescribeError {}

impl ServiceDescription {
    /// Creates an empty description for `service` at release `release`.
    pub fn new(service: impl Into<String>, release: impl Into<String>) -> ServiceDescription {
        ServiceDescription {
            service: service.into(),
            release: release.into(),
            operations: Vec::new(),
        }
    }

    /// The service name.
    pub fn service(&self) -> &str {
        &self.service
    }

    /// The release identifier (e.g. `"1.1"`).
    pub fn release(&self) -> &str {
        &self.release
    }

    /// All operations.
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// Looks up an operation by name.
    pub fn operation(&self, name: &str) -> Option<&Operation> {
        self.operations.iter().find(|o| o.name() == name)
    }

    /// Adds an operation.
    ///
    /// # Panics
    ///
    /// Panics if an operation with the same name already exists.
    pub fn add_operation(&mut self, op: Operation) -> &mut Self {
        assert!(
            self.operation(op.name()).is_none(),
            "duplicate operation `{}`",
            op.name()
        );
        self.operations.push(op);
        self
    }

    /// Returns a copy of this description for a new release, keeping the
    /// interface identical (the common case for an online upgrade).
    pub fn for_release(&self, release: impl Into<String>) -> ServiceDescription {
        ServiceDescription {
            service: self.service.clone(),
            release: release.into(),
            operations: self.operations.clone(),
        }
    }

    /// Publishing option 1 (Section 6.2): appends an `<Op>Conf` double to
    /// the response of `operation`. **Not backward compatible** — existing
    /// consumers' response parsing will see an extra part.
    ///
    /// # Errors
    ///
    /// Returns [`DescribeError::NoSuchOperation`] if the operation does
    /// not exist.
    pub fn extend_response_with_confidence(
        &mut self,
        operation: &str,
    ) -> Result<(), DescribeError> {
        let conf_name = format!("{}Conf", capitalize(operation));
        let op = self
            .operations
            .iter_mut()
            .find(|o| o.name() == operation)
            .ok_or_else(|| DescribeError::NoSuchOperation(operation.to_owned()))?;
        op.response.push(Part::new(conf_name, XsdType::Double));
        Ok(())
    }

    /// Publishing option 2 (Section 6.2): adds an `OperationConf`
    /// operation taking an operation name and returning the confidence in
    /// that operation. Backward compatible, but the confidence must be
    /// fetched with a separate invocation.
    ///
    /// # Errors
    ///
    /// Returns [`DescribeError::DuplicateOperation`] if already added.
    pub fn add_confidence_operation(&mut self) -> Result<(), DescribeError> {
        if self.operation("OperationConf").is_some() {
            return Err(DescribeError::DuplicateOperation("OperationConf".into()));
        }
        self.operations.push(
            Operation::new("OperationConf")
                .with_input("operation", XsdType::Str)
                .with_output("OpConf", XsdType::Double),
        );
        Ok(())
    }

    /// Publishing option 3 (Section 6.2): adds `<operation>Conf`, a copy
    /// of `operation` whose response additionally carries the confidence.
    /// Backward compatible *and* per-invocation: confidence-conscious
    /// consumers switch to the new operation, others are unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`DescribeError::NoSuchOperation`] if `operation` does not
    /// exist, or [`DescribeError::DuplicateOperation`] if the paired
    /// operation was already added.
    pub fn add_paired_confidence_operation(
        &mut self,
        operation: &str,
    ) -> Result<(), DescribeError> {
        let base = self
            .operation(operation)
            .ok_or_else(|| DescribeError::NoSuchOperation(operation.to_owned()))?
            .clone();
        let paired_name = format!("{operation}Conf");
        if self.operation(&paired_name).is_some() {
            return Err(DescribeError::DuplicateOperation(paired_name));
        }
        let mut paired = Operation::new(paired_name);
        paired.request = base.request.clone();
        paired.response = base.response.clone();
        paired.response.push(Part::new(
            format!("{}Conf", capitalize(operation)),
            XsdType::Double,
        ));
        self.operations.push(paired);
        Ok(())
    }

    /// Renders the description as WSDL-like text (the `<types>` fragment
    /// style used in the paper's Section 6.2 listing).
    pub fn to_wsdl_like(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "<definitions service=\"{}\" release=\"{}\">\n<types>\n",
            self.service, self.release
        ));
        for op in &self.operations {
            render_message(
                &mut out,
                &format!("{}Request", capitalize(op.name())),
                &op.request,
            );
            render_message(
                &mut out,
                &format!("{}Response", capitalize(op.name())),
                &op.response,
            );
        }
        out.push_str("</types>\n</definitions>");
        out
    }
}

fn render_message(out: &mut String, element: &str, parts: &[Part]) {
    out.push_str(&format!("  <s:element name=\"{element}\">\n"));
    out.push_str("    <s:complexType><s:sequence>\n");
    for part in parts {
        out.push_str(&format!(
            "      <s:element minOccurs=\"0\" maxOccurs=\"1\" name=\"{}\" type=\"{}\"/>\n",
            part.name, part.ty
        ));
    }
    out.push_str("    </s:sequence></s:complexType>\n  </s:element>\n");
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServiceDescription {
        let mut wsdl = ServiceDescription::new("Svc", "1.0");
        wsdl.add_operation(
            Operation::new("operation1")
                .with_input("param1", XsdType::Int)
                .with_input("param2", XsdType::Str)
                .with_output("Op1Result", XsdType::Str),
        );
        wsdl
    }

    #[test]
    fn operation_lookup() {
        let wsdl = sample();
        assert_eq!(wsdl.service(), "Svc");
        assert_eq!(wsdl.release(), "1.0");
        let op = wsdl.operation("operation1").unwrap();
        assert_eq!(op.request_parts().len(), 2);
        assert_eq!(op.response_parts().len(), 1);
        assert!(wsdl.operation("nope").is_none());
    }

    #[test]
    fn for_release_keeps_interface() {
        let wsdl = sample();
        let next = wsdl.for_release("1.1");
        assert_eq!(next.release(), "1.1");
        assert_eq!(next.operations(), wsdl.operations());
    }

    #[test]
    fn option1_extends_response() {
        let mut wsdl = sample();
        wsdl.extend_response_with_confidence("operation1").unwrap();
        let op = wsdl.operation("operation1").unwrap();
        assert_eq!(op.response_parts().len(), 2);
        assert_eq!(op.response_parts()[1].name, "Operation1Conf");
        assert!(op.publishes_confidence());
    }

    #[test]
    fn option1_missing_operation_errors() {
        let mut wsdl = sample();
        let err = wsdl.extend_response_with_confidence("zzz").unwrap_err();
        assert_eq!(err, DescribeError::NoSuchOperation("zzz".into()));
        assert!(err.to_string().contains("zzz"));
    }

    #[test]
    fn option2_adds_confidence_operation_once() {
        let mut wsdl = sample();
        wsdl.add_confidence_operation().unwrap();
        assert!(wsdl.operation("OperationConf").is_some());
        let err = wsdl.add_confidence_operation().unwrap_err();
        assert!(matches!(err, DescribeError::DuplicateOperation(_)));
    }

    #[test]
    fn option3_pairs_operation() {
        let mut wsdl = sample();
        wsdl.add_paired_confidence_operation("operation1").unwrap();
        let paired = wsdl.operation("operation1Conf").unwrap();
        // Same request signature as the base operation.
        assert_eq!(
            paired.request_parts(),
            wsdl.operation("operation1").unwrap().request_parts()
        );
        // Response = base response + confidence part.
        assert_eq!(paired.response_parts().len(), 2);
        assert!(paired.publishes_confidence());
        // Base operation unchanged: backward compatible.
        assert!(!wsdl.operation("operation1").unwrap().publishes_confidence());
    }

    #[test]
    fn option3_duplicate_errors() {
        let mut wsdl = sample();
        wsdl.add_paired_confidence_operation("operation1").unwrap();
        let err = wsdl
            .add_paired_confidence_operation("operation1")
            .unwrap_err();
        assert_eq!(
            err,
            DescribeError::DuplicateOperation("operation1Conf".into())
        );
    }

    #[test]
    fn wsdl_rendering_mentions_parts() {
        let wsdl = sample();
        let text = wsdl.to_wsdl_like();
        assert!(text.contains("name=\"Operation1Request\""));
        assert!(text.contains("name=\"param1\" type=\"s:int\""));
        assert!(text.contains("release=\"1.0\""));
    }

    #[test]
    #[should_panic(expected = "duplicate operation")]
    fn duplicate_add_operation_panics() {
        let mut wsdl = sample();
        wsdl.add_operation(Operation::new("operation1"));
    }
}
