//! A simulated transport between consumer and service.
//!
//! Component WSs "are executed in different management domains"; the
//! network between the middleware and a release adds latency and can lose
//! messages. [`TransportLink`] wraps a [`ServiceEndpoint`] and models both,
//! turning a lost message into an effectively unbounded response time (the
//! middleware's timeout converts it into an evident failure).
//!
//! Loss is modelled separately per direction: a lost *request* means the
//! service never executed, while a lost *response* means it did — ground
//! truth a detection audit must distinguish. [`TransportLink::with_loss_probability`]
//! keeps the original single-knob behaviour (request-side loss).

use wsu_simcore::dist::DelayModel;
use wsu_simcore::rng::StreamRng;
use wsu_simcore::time::SimDuration;

use crate::endpoint::{Invocation, ServiceEndpoint};
use crate::message::{Envelope, Fault, FaultCode};

/// An end-to-end time no middleware timeout will accept (~1 virtual year).
const NEVER_SECS: f64 = 3.15e7;

/// Outcome of sending one request over a link.
#[derive(Debug, Clone, PartialEq)]
pub enum Delivery {
    /// The response arrived after the given end-to-end time.
    Delivered(Invocation),
    /// The request was lost on the way out; the service never executed
    /// and no reply will ever arrive.
    Lost,
    /// The service executed — the invocation records its ground truth —
    /// but the response was lost on the way back, so the consumer will
    /// never see it.
    LostAfterExecution(Invocation),
}

impl Delivery {
    /// Returns the invocation if delivered.
    pub fn into_invocation(self) -> Option<Invocation> {
        match self {
            Delivery::Delivered(inv) => Some(inv),
            Delivery::Lost | Delivery::LostAfterExecution(_) => None,
        }
    }

    /// Returns `true` if the message was lost in either direction.
    pub fn is_lost(&self) -> bool {
        matches!(self, Delivery::Lost | Delivery::LostAfterExecution(_))
    }
}

/// A lossy, delaying link in front of an endpoint.
///
/// # Example
///
/// ```
/// use wsu_simcore::dist::DelayModel;
/// use wsu_simcore::rng::StreamRng;
/// use wsu_wstack::endpoint::SyntheticService;
/// use wsu_wstack::message::Envelope;
/// use wsu_wstack::transport::TransportLink;
///
/// let svc = SyntheticService::builder("S", "1.0").build();
/// let mut link = TransportLink::new(svc)
///     .with_latency(DelayModel::constant(0.05))
///     .with_loss_probability(0.0);
/// let mut rng = StreamRng::from_seed(1);
/// let delivery = link.send(&Envelope::request("invoke"), &mut rng);
/// assert!(!delivery.is_lost());
/// ```
#[derive(Debug, Clone)]
pub struct TransportLink<S> {
    endpoint: S,
    latency: DelayModel,
    request_loss: f64,
    response_loss: f64,
    sent: u64,
    lost_requests: u64,
    lost_responses: u64,
}

fn check_probability(p: f64) {
    assert!(
        (0.0..=1.0).contains(&p),
        "loss probability {p} not in [0, 1]"
    );
}

impl<S: ServiceEndpoint> TransportLink<S> {
    /// Wraps `endpoint` with a zero-latency, lossless link.
    pub fn new(endpoint: S) -> TransportLink<S> {
        TransportLink {
            endpoint,
            latency: DelayModel::constant(0.0),
            request_loss: 0.0,
            response_loss: 0.0,
            sent: 0,
            lost_requests: 0,
            lost_responses: 0,
        }
    }

    /// Sets the one-way latency model (applied twice: request + response).
    pub fn with_latency(mut self, latency: DelayModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the probability that a round trip is lost entirely.
    ///
    /// Back-compat alias for [`TransportLink::with_request_loss`]: the
    /// original model lost the round trip before the service executed.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_loss_probability(self, p: f64) -> Self {
        self.with_request_loss(p)
    }

    /// Sets the probability that the *request* is lost on the way out
    /// (the service never executes).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_request_loss(mut self, p: f64) -> Self {
        check_probability(p);
        self.request_loss = p;
        self
    }

    /// Sets the probability that the *response* is lost on the way back
    /// (the service executes, but the consumer never hears).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_response_loss(mut self, p: f64) -> Self {
        check_probability(p);
        self.response_loss = p;
        self
    }

    /// Sends one request. On delivery, the invocation's `exec_time` is the
    /// *end-to-end* time: network out + service execution + network back.
    pub fn send(&mut self, request: &Envelope, rng: &mut StreamRng) -> Delivery {
        self.sent += 1;
        if rng.bernoulli(self.request_loss) {
            self.lost_requests += 1;
            return Delivery::Lost;
        }
        let out = self.latency.sample(rng);
        let mut invocation = self.endpoint.invoke(request, rng);
        let back = self.latency.sample(rng);
        invocation.exec_time = invocation.exec_time + out + back;
        // Guarded so a link configured only via `with_loss_probability`
        // consumes exactly the same random draws as it always did.
        if self.response_loss > 0.0 && rng.bernoulli(self.response_loss) {
            self.lost_responses += 1;
            return Delivery::LostAfterExecution(invocation);
        }
        Delivery::Delivered(invocation)
    }

    /// Requests sent over this link.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages lost in either direction.
    pub fn lost(&self) -> u64 {
        self.lost_requests + self.lost_responses
    }

    /// Requests lost on the way out.
    pub fn lost_requests(&self) -> u64 {
        self.lost_requests
    }

    /// Responses lost on the way back.
    pub fn lost_responses(&self) -> u64 {
        self.lost_responses
    }

    /// Access to the wrapped endpoint.
    pub fn endpoint(&self) -> &S {
        &self.endpoint
    }

    /// Mutable access to the wrapped endpoint.
    pub fn endpoint_mut(&mut self) -> &mut S {
        &mut self.endpoint
    }

    /// Unwraps the link, returning the endpoint.
    pub fn into_inner(self) -> S {
        self.endpoint
    }

    fn never_arrives(
        operation: &str,
        class: crate::outcome::ResponseClass,
        reason: &str,
    ) -> Invocation {
        let mut invocation =
            Invocation::from_class(operation, class, SimDuration::from_secs(NEVER_SECS));
        invocation.response = std::rc::Rc::new(Envelope::fault(
            operation,
            Fault::new(FaultCode::Timeout, reason),
        ));
        invocation
    }
}

impl<S: ServiceEndpoint> ServiceEndpoint for TransportLink<S> {
    fn describe(&self) -> &crate::wsdl::ServiceDescription {
        self.endpoint.describe()
    }

    /// A lost message surfaces as a response that never arrives: an
    /// execution time beyond any timeout, so the middleware scores it as
    /// NRDT. A lost *request* is an evident failure of the round trip
    /// (the service never ran); a lost *response* keeps the executed
    /// service's ground-truth class.
    fn invoke(&mut self, request: &Envelope, rng: &mut StreamRng) -> Invocation {
        match self.send(request, rng) {
            Delivery::Delivered(invocation) => invocation,
            Delivery::Lost => Self::never_arrives(
                request.operation(),
                crate::outcome::ResponseClass::EvidentFailure,
                "message lost in transit",
            ),
            Delivery::LostAfterExecution(invocation) => Self::never_arrives(
                request.operation(),
                invocation.class,
                "response lost in transit",
            ),
        }
    }

    fn advance_clock(&mut self, now_secs: f64) {
        self.endpoint.advance_clock(now_secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::SyntheticService;
    use crate::outcome::{OutcomeProfile, ResponseClass};
    use wsu_simcore::dist::DelayModel;

    fn service() -> SyntheticService {
        SyntheticService::builder("S", "1.0")
            .exec_time(DelayModel::constant(0.5))
            .build()
    }

    #[test]
    fn latency_is_added_both_ways() {
        let mut link = TransportLink::new(service()).with_latency(DelayModel::constant(0.1));
        let mut rng = StreamRng::from_seed(1);
        let delivery = link.send(&Envelope::request("invoke"), &mut rng);
        let inv = delivery.into_invocation().unwrap();
        assert!((inv.exec_time.as_secs() - 0.7).abs() < 1e-12);
        assert_eq!(inv.class, ResponseClass::Correct);
    }

    #[test]
    fn lossless_link_never_loses() {
        let mut link = TransportLink::new(service());
        let mut rng = StreamRng::from_seed(2);
        for _ in 0..100 {
            assert!(!link.send(&Envelope::request("invoke"), &mut rng).is_lost());
        }
        assert_eq!(link.sent(), 100);
        assert_eq!(link.lost(), 0);
    }

    #[test]
    fn loss_rate_is_respected() {
        let mut link = TransportLink::new(service()).with_loss_probability(0.2);
        let mut rng = StreamRng::from_seed(3);
        let n = 50_000;
        let lost = (0..n)
            .filter(|_| link.send(&Envelope::request("invoke"), &mut rng).is_lost())
            .count();
        assert!((lost as f64 / n as f64 - 0.2).abs() < 0.01);
        assert_eq!(link.lost() as usize, lost);
        assert_eq!(link.lost_requests() as usize, lost);
        assert_eq!(link.lost_responses(), 0);
    }

    #[test]
    fn response_loss_rate_is_respected() {
        let mut link = TransportLink::new(service()).with_response_loss(0.2);
        let mut rng = StreamRng::from_seed(9);
        let n = 50_000;
        let lost = (0..n)
            .filter(|_| link.send(&Envelope::request("invoke"), &mut rng).is_lost())
            .count();
        assert!((lost as f64 / n as f64 - 0.2).abs() < 0.01);
        assert_eq!(link.lost_responses() as usize, lost);
        assert_eq!(link.lost_requests(), 0);
        // The service executed every single time — including lost ones.
        assert_eq!(link.endpoint().invocations(), n as u64);
    }

    #[test]
    fn endpoint_access() {
        let mut link = TransportLink::new(service());
        assert_eq!(link.endpoint().describe().service(), "S");
        let _ = link.endpoint_mut();
        let svc = link.into_inner();
        assert_eq!(svc.describe().release(), "1.0");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_probability_panics() {
        let _ = TransportLink::new(service()).with_loss_probability(2.0);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_response_loss_panics() {
        let _ = TransportLink::new(service()).with_response_loss(-0.1);
    }

    #[test]
    fn lost_delivery_has_no_invocation() {
        assert_eq!(Delivery::Lost.into_invocation(), None);
        let inv = Invocation::from_class("op", ResponseClass::Correct, SimDuration::from_secs(0.1));
        assert_eq!(Delivery::LostAfterExecution(inv).into_invocation(), None);
    }

    #[test]
    fn link_is_an_endpoint_and_losses_become_nrdt() {
        use crate::endpoint::ServiceEndpoint;
        let mut link = TransportLink::new(service()).with_loss_probability(1.0);
        let mut rng = StreamRng::from_seed(7);
        let inv = link.invoke(&Envelope::request("invoke"), &mut rng);
        // The "response" never arrives within any plausible timeout.
        assert!(inv.exec_time.as_secs() > 1e6);
        assert_eq!(inv.class, ResponseClass::EvidentFailure);
        assert!(inv.response.is_fault());
        assert_eq!(link.describe().service(), "S");
        // The service never executed: the request was lost outbound.
        assert_eq!(link.endpoint().invocations(), 0);
    }

    #[test]
    fn lost_response_preserves_ground_truth_class() {
        use crate::endpoint::ServiceEndpoint;
        // A service that always fails non-evidently: if its response is
        // lost, the audit's ground truth must still say NER, not ER.
        let svc = SyntheticService::builder("S", "1.0")
            .outcomes(OutcomeProfile::new(0.0, 0.0, 1.0))
            .exec_time(DelayModel::constant(0.5))
            .build();
        let mut link = TransportLink::new(svc).with_response_loss(1.0);
        let mut rng = StreamRng::from_seed(11);
        let inv = link.invoke(&Envelope::request("invoke"), &mut rng);
        assert_eq!(inv.class, ResponseClass::NonEvidentFailure);
        assert!(inv.exec_time.as_secs() > 1e6);
        assert!(inv.response.is_fault());
        assert_eq!(link.endpoint().invocations(), 1);
        assert_eq!(link.lost_responses(), 1);
    }

    #[test]
    fn request_loss_draw_sequence_is_unchanged_by_the_split() {
        // with_loss_probability must consume exactly the draws the
        // pre-split implementation did, so existing seeded results hold.
        let mut legacy = TransportLink::new(service()).with_loss_probability(0.3);
        let mut split = TransportLink::new(service())
            .with_request_loss(0.3)
            .with_response_loss(0.0);
        let mut rng_a = StreamRng::from_seed(42);
        let mut rng_b = StreamRng::from_seed(42);
        let req = Envelope::request("invoke");
        for _ in 0..200 {
            assert_eq!(legacy.send(&req, &mut rng_a), split.send(&req, &mut rng_b));
        }
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn link_endpoint_delivers_normally_when_lossless() {
        use crate::endpoint::ServiceEndpoint;
        let mut link = TransportLink::new(service()).with_latency(DelayModel::constant(0.1));
        let mut rng = StreamRng::from_seed(8);
        let inv = link.invoke(&Envelope::request("invoke"), &mut rng);
        assert!((inv.exec_time.as_secs() - 0.7).abs() < 1e-12);
        assert_eq!(inv.class, ResponseClass::Correct);
    }
}
