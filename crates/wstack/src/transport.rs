//! A simulated transport between consumer and service.
//!
//! Component WSs "are executed in different management domains"; the
//! network between the middleware and a release adds latency and can lose
//! messages. [`TransportLink`] wraps a [`ServiceEndpoint`] and models both,
//! turning a lost message into an effectively unbounded response time (the
//! middleware's timeout converts it into an evident failure).

use wsu_simcore::dist::DelayModel;
use wsu_simcore::rng::StreamRng;

use crate::endpoint::{Invocation, ServiceEndpoint};
use crate::message::Envelope;

/// Outcome of sending one request over a link.
#[derive(Debug, Clone, PartialEq)]
pub enum Delivery {
    /// The response arrived after the given end-to-end time.
    Delivered(Invocation),
    /// The request or the response was lost; no reply will ever arrive.
    Lost,
}

impl Delivery {
    /// Returns the invocation if delivered.
    pub fn into_invocation(self) -> Option<Invocation> {
        match self {
            Delivery::Delivered(inv) => Some(inv),
            Delivery::Lost => None,
        }
    }

    /// Returns `true` if the message was lost.
    pub fn is_lost(&self) -> bool {
        matches!(self, Delivery::Lost)
    }
}

/// A lossy, delaying link in front of an endpoint.
///
/// # Example
///
/// ```
/// use wsu_simcore::dist::DelayModel;
/// use wsu_simcore::rng::StreamRng;
/// use wsu_wstack::endpoint::SyntheticService;
/// use wsu_wstack::message::Envelope;
/// use wsu_wstack::transport::TransportLink;
///
/// let svc = SyntheticService::builder("S", "1.0").build();
/// let mut link = TransportLink::new(svc)
///     .with_latency(DelayModel::constant(0.05))
///     .with_loss_probability(0.0);
/// let mut rng = StreamRng::from_seed(1);
/// let delivery = link.send(&Envelope::request("invoke"), &mut rng);
/// assert!(!delivery.is_lost());
/// ```
#[derive(Debug, Clone)]
pub struct TransportLink<S> {
    endpoint: S,
    latency: DelayModel,
    loss_probability: f64,
    sent: u64,
    lost: u64,
}

impl<S: ServiceEndpoint> TransportLink<S> {
    /// Wraps `endpoint` with a zero-latency, lossless link.
    pub fn new(endpoint: S) -> TransportLink<S> {
        TransportLink {
            endpoint,
            latency: DelayModel::constant(0.0),
            loss_probability: 0.0,
            sent: 0,
            lost: 0,
        }
    }

    /// Sets the one-way latency model (applied twice: request + response).
    pub fn with_latency(mut self, latency: DelayModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the probability that a round trip is lost entirely.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_loss_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} not in [0, 1]"
        );
        self.loss_probability = p;
        self
    }

    /// Sends one request. On delivery, the invocation's `exec_time` is the
    /// *end-to-end* time: network out + service execution + network back.
    pub fn send(&mut self, request: &Envelope, rng: &mut StreamRng) -> Delivery {
        self.sent += 1;
        if rng.bernoulli(self.loss_probability) {
            self.lost += 1;
            return Delivery::Lost;
        }
        let out = self.latency.sample(rng);
        let mut invocation = self.endpoint.invoke(request, rng);
        let back = self.latency.sample(rng);
        invocation.exec_time = invocation.exec_time + out + back;
        Delivery::Delivered(invocation)
    }

    /// Requests sent over this link.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Round trips lost.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Access to the wrapped endpoint.
    pub fn endpoint(&self) -> &S {
        &self.endpoint
    }

    /// Mutable access to the wrapped endpoint.
    pub fn endpoint_mut(&mut self) -> &mut S {
        &mut self.endpoint
    }

    /// Unwraps the link, returning the endpoint.
    pub fn into_inner(self) -> S {
        self.endpoint
    }
}

impl<S: ServiceEndpoint> ServiceEndpoint for TransportLink<S> {
    fn describe(&self) -> &crate::wsdl::ServiceDescription {
        self.endpoint.describe()
    }

    /// A lost round trip surfaces as a response that never arrives: an
    /// evident failure with an execution time beyond any timeout, so the
    /// middleware scores it as NRDT.
    fn invoke(&mut self, request: &Envelope, rng: &mut StreamRng) -> Invocation {
        match self.send(request, rng) {
            Delivery::Delivered(invocation) => invocation,
            Delivery::Lost => {
                let mut invocation = Invocation::from_class(
                    request.operation(),
                    crate::outcome::ResponseClass::EvidentFailure,
                    wsu_simcore::time::SimDuration::from_secs(3.15e7),
                );
                invocation.response = Envelope::fault(
                    request.operation(),
                    crate::message::Fault::new(
                        crate::message::FaultCode::Timeout,
                        "message lost in transit",
                    ),
                );
                invocation
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::SyntheticService;
    use crate::outcome::ResponseClass;
    use wsu_simcore::dist::DelayModel;

    fn service() -> SyntheticService {
        SyntheticService::builder("S", "1.0")
            .exec_time(DelayModel::constant(0.5))
            .build()
    }

    #[test]
    fn latency_is_added_both_ways() {
        let mut link = TransportLink::new(service()).with_latency(DelayModel::constant(0.1));
        let mut rng = StreamRng::from_seed(1);
        let delivery = link.send(&Envelope::request("invoke"), &mut rng);
        let inv = delivery.into_invocation().unwrap();
        assert!((inv.exec_time.as_secs() - 0.7).abs() < 1e-12);
        assert_eq!(inv.class, ResponseClass::Correct);
    }

    #[test]
    fn lossless_link_never_loses() {
        let mut link = TransportLink::new(service());
        let mut rng = StreamRng::from_seed(2);
        for _ in 0..100 {
            assert!(!link.send(&Envelope::request("invoke"), &mut rng).is_lost());
        }
        assert_eq!(link.sent(), 100);
        assert_eq!(link.lost(), 0);
    }

    #[test]
    fn loss_rate_is_respected() {
        let mut link = TransportLink::new(service()).with_loss_probability(0.2);
        let mut rng = StreamRng::from_seed(3);
        let n = 50_000;
        let lost = (0..n)
            .filter(|_| link.send(&Envelope::request("invoke"), &mut rng).is_lost())
            .count();
        assert!((lost as f64 / n as f64 - 0.2).abs() < 0.01);
        assert_eq!(link.lost() as usize, lost);
    }

    #[test]
    fn endpoint_access() {
        let mut link = TransportLink::new(service());
        assert_eq!(link.endpoint().describe().service(), "S");
        let _ = link.endpoint_mut();
        let svc = link.into_inner();
        assert_eq!(svc.describe().release(), "1.0");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_probability_panics() {
        let _ = TransportLink::new(service()).with_loss_probability(2.0);
    }

    #[test]
    fn lost_delivery_has_no_invocation() {
        assert_eq!(Delivery::Lost.into_invocation(), None);
    }

    #[test]
    fn link_is_an_endpoint_and_losses_become_nrdt() {
        use crate::endpoint::ServiceEndpoint;
        let mut link = TransportLink::new(service()).with_loss_probability(1.0);
        let mut rng = StreamRng::from_seed(7);
        let inv = link.invoke(&Envelope::request("invoke"), &mut rng);
        // The "response" never arrives within any plausible timeout.
        assert!(inv.exec_time.as_secs() > 1e6);
        assert_eq!(inv.class, ResponseClass::EvidentFailure);
        assert!(inv.response.is_fault());
        assert_eq!(link.describe().service(), "S");
    }

    #[test]
    fn link_endpoint_delivers_normally_when_lossless() {
        use crate::endpoint::ServiceEndpoint;
        let mut link = TransportLink::new(service()).with_latency(DelayModel::constant(0.1));
        let mut rng = StreamRng::from_seed(8);
        let inv = link.invoke(&Envelope::request("invoke"), &mut rng);
        assert!((inv.exec_time.as_secs() - 0.7).abs() < 1e-12);
        assert_eq!(inv.class, ResponseClass::Correct);
    }
}
