//! A UDDI-like service registry.
//!
//! Providers publish [`ServiceRecord`]s (name, endpoint URI, WSDL-like
//! description); consumers look services up by name or category. Two
//! paper-specific extensions are modelled:
//!
//! * **release links** — a record can reference the record of a newer
//!   release of the same service, the registry-based upgrade-notification
//!   option discussed in Section 7.2;
//! * **published confidence** — a record can carry the provider's (or a
//!   broker's) current confidence summary for the service, the UDDI
//!   publishing option of Section 6.2.

use std::collections::HashMap;
use std::fmt;

use crate::wsdl::ServiceDescription;

/// An opaque registry key for a published service record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceKey(u64);

impl fmt::Display for ServiceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uddi:{:016x}", self.0)
    }
}

/// A published confidence summary: the provider's current confidence that
/// the service meets a stated pfd target (Section 6.2's `s:double`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedConfidence {
    /// The pfd target the confidence refers to (e.g. `1e-3`).
    pub pfd_target: f64,
    /// Confidence in `[0, 1]` that the service's pfd is at or below the
    /// target.
    pub confidence: f64,
}

impl PublishedConfidence {
    /// Creates a published confidence summary.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is outside `[0, 1]` or `pfd_target` is not
    /// in `(0, 1)`.
    pub fn new(pfd_target: f64, confidence: f64) -> PublishedConfidence {
        assert!(
            pfd_target > 0.0 && pfd_target < 1.0,
            "pfd target {pfd_target} not in (0, 1)"
        );
        assert!(
            (0.0..=1.0).contains(&confidence),
            "confidence {confidence} not in [0, 1]"
        );
        PublishedConfidence {
            pfd_target,
            confidence,
        }
    }
}

/// One published service: the unit of registry lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRecord {
    /// Human-oriented service name (`"Web-Service 1"`).
    pub name: String,
    /// Endpoint URI (`"http://node1/ws1"`).
    pub uri: String,
    /// Business category used for yellow-pages lookup.
    pub category: String,
    /// The service's interface description.
    pub description: ServiceDescription,
    /// Provider-published confidence, if any.
    pub confidence: Option<PublishedConfidence>,
}

impl ServiceRecord {
    /// Creates a record with no published confidence.
    pub fn new(
        name: impl Into<String>,
        uri: impl Into<String>,
        category: impl Into<String>,
        description: ServiceDescription,
    ) -> ServiceRecord {
        ServiceRecord {
            name: name.into(),
            uri: uri.into(),
            category: category.into(),
            description,
            confidence: None,
        }
    }

    /// Attaches a published confidence (builder style).
    pub fn with_confidence(mut self, confidence: PublishedConfidence) -> ServiceRecord {
        self.confidence = Some(confidence);
        self
    }
}

/// Errors returned by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The given key is not registered.
    UnknownKey(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownKey(k) => write!(f, "unknown registry key {k}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The registry itself.
///
/// # Example
///
/// ```
/// use wsu_wstack::registry::{Registry, ServiceRecord};
/// use wsu_wstack::wsdl::ServiceDescription;
///
/// let mut registry = Registry::new();
/// let old = registry.publish(ServiceRecord::new(
///     "Quote",
///     "http://node1/quote",
///     "finance",
///     ServiceDescription::new("Quote", "1.0"),
/// ));
/// let new = registry.publish(ServiceRecord::new(
///     "Quote",
///     "http://node1/quote-v11",
///     "finance",
///     ServiceDescription::new("Quote", "1.1"),
/// ));
/// registry.link_new_release(old, new).unwrap();
/// assert_eq!(registry.newer_release(old).unwrap(), Some(new));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    records: HashMap<ServiceKey, ServiceRecord>,
    release_links: HashMap<ServiceKey, ServiceKey>,
    next_key: u64,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Publishes a record and returns its key.
    pub fn publish(&mut self, record: ServiceRecord) -> ServiceKey {
        let key = ServiceKey(self.next_key);
        self.next_key += 1;
        self.records.insert(key, record);
        key
    }

    /// Removes a record (e.g. an old release being phased out). Any
    /// release link from or to the record is removed as well.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownKey`] if the key is not registered.
    pub fn withdraw(&mut self, key: ServiceKey) -> Result<ServiceRecord, RegistryError> {
        let record = self
            .records
            .remove(&key)
            .ok_or_else(|| RegistryError::UnknownKey(key.to_string()))?;
        self.release_links.remove(&key);
        self.release_links.retain(|_, v| *v != key);
        Ok(record)
    }

    /// Looks a record up by key.
    pub fn get(&self, key: ServiceKey) -> Option<&ServiceRecord> {
        self.records.get(&key)
    }

    /// Finds all records with the given service name, in key order.
    pub fn find_by_name(&self, name: &str) -> Vec<(ServiceKey, &ServiceRecord)> {
        let mut hits: Vec<_> = self
            .records
            .iter()
            .filter(|(_, r)| r.name == name)
            .map(|(k, r)| (*k, r))
            .collect();
        hits.sort_by_key(|(k, _)| *k);
        hits
    }

    /// Finds all records in the given category, in key order.
    pub fn find_by_category(&self, category: &str) -> Vec<(ServiceKey, &ServiceRecord)> {
        let mut hits: Vec<_> = self
            .records
            .iter()
            .filter(|(_, r)| r.category == category)
            .map(|(k, r)| (*k, r))
            .collect();
        hits.sort_by_key(|(k, _)| *k);
        hits
    }

    /// Finds functionally-equivalent candidates for a service: records
    /// in the same category whose service name differs from
    /// `exclude_name` (the failed service looking for a stand-in must
    /// not be offered one of its own releases). Results are in key
    /// order, so substitution is deterministic.
    pub fn find_equivalent(
        &self,
        category: &str,
        exclude_name: &str,
    ) -> Vec<(ServiceKey, &ServiceRecord)> {
        let mut hits: Vec<_> = self
            .records
            .iter()
            .filter(|(_, r)| r.category == category && r.name != exclude_name)
            .map(|(k, r)| (*k, r))
            .collect();
        hits.sort_by_key(|(k, _)| *k);
        hits
    }

    /// Records that `newer` is the next release of `older` (the registry
    /// notification mechanism of Section 7.2).
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownKey`] if either key is not
    /// registered.
    pub fn link_new_release(
        &mut self,
        older: ServiceKey,
        newer: ServiceKey,
    ) -> Result<(), RegistryError> {
        for key in [older, newer] {
            if !self.records.contains_key(&key) {
                return Err(RegistryError::UnknownKey(key.to_string()));
            }
        }
        self.release_links.insert(older, newer);
        Ok(())
    }

    /// Returns the newer release linked from `key`, if any.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownKey`] if the key is not registered.
    pub fn newer_release(&self, key: ServiceKey) -> Result<Option<ServiceKey>, RegistryError> {
        if !self.records.contains_key(&key) {
            return Err(RegistryError::UnknownKey(key.to_string()));
        }
        Ok(self.release_links.get(&key).copied())
    }

    /// Updates (or sets) the published confidence on a record — the UDDI
    /// publishing path of Section 6.2, usable by both providers and
    /// consumers ("the clients will be able to keep this up to date").
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownKey`] if the key is not registered.
    pub fn publish_confidence(
        &mut self,
        key: ServiceKey,
        confidence: PublishedConfidence,
    ) -> Result<(), RegistryError> {
        let record = self
            .records
            .get_mut(&key)
            .ok_or_else(|| RegistryError::UnknownKey(key.to_string()))?;
        record.confidence = Some(confidence);
        Ok(())
    }

    /// Number of published records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing is published.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, release: &str) -> ServiceRecord {
        ServiceRecord::new(
            name,
            format!("http://node/{name}/{release}"),
            "test",
            ServiceDescription::new(name, release),
        )
    }

    #[test]
    fn publish_and_lookup() {
        let mut reg = Registry::new();
        let k = reg.publish(record("A", "1.0"));
        assert_eq!(reg.get(k).unwrap().name, "A");
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    fn find_by_name_returns_all_releases() {
        let mut reg = Registry::new();
        let k0 = reg.publish(record("A", "1.0"));
        let k1 = reg.publish(record("A", "1.1"));
        reg.publish(record("B", "1.0"));
        let hits = reg.find_by_name("A");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, k0);
        assert_eq!(hits[1].0, k1);
    }

    #[test]
    fn find_by_category() {
        let mut reg = Registry::new();
        reg.publish(record("A", "1.0"));
        let mut b = record("B", "1.0");
        b.category = "other".into();
        reg.publish(b);
        assert_eq!(reg.find_by_category("test").len(), 1);
        assert_eq!(reg.find_by_category("other").len(), 1);
        assert!(reg.find_by_category("none").is_empty());
    }

    #[test]
    fn find_equivalent_excludes_own_releases_and_sorts_by_key() {
        let mut reg = Registry::new();
        reg.publish(record("A", "1.0"));
        reg.publish(record("A", "1.1"));
        let b = reg.publish(record("B", "1.0"));
        let c = reg.publish(record("C", "2.0"));
        let mut other = record("D", "1.0");
        other.category = "other".into();
        reg.publish(other);
        let hits = reg.find_equivalent("test", "A");
        assert_eq!(hits.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![b, c]);
        assert!(reg.find_equivalent("test", "A").len() == 2);
        assert!(reg.find_equivalent("none", "A").is_empty());
    }

    #[test]
    fn release_links() {
        let mut reg = Registry::new();
        let old = reg.publish(record("A", "1.0"));
        let new = reg.publish(record("A", "1.1"));
        assert_eq!(reg.newer_release(old).unwrap(), None);
        reg.link_new_release(old, new).unwrap();
        assert_eq!(reg.newer_release(old).unwrap(), Some(new));
        assert_eq!(reg.newer_release(new).unwrap(), None);
    }

    #[test]
    fn withdraw_removes_record_and_links() {
        let mut reg = Registry::new();
        let old = reg.publish(record("A", "1.0"));
        let new = reg.publish(record("A", "1.1"));
        reg.link_new_release(old, new).unwrap();
        let withdrawn = reg.withdraw(new).unwrap();
        assert_eq!(withdrawn.description.release(), "1.1");
        assert_eq!(reg.newer_release(old).unwrap(), None);
        assert!(reg.get(new).is_none());
    }

    #[test]
    fn withdraw_unknown_errors() {
        let mut reg = Registry::new();
        let k = reg.publish(record("A", "1.0"));
        reg.withdraw(k).unwrap();
        let err = reg.withdraw(k).unwrap_err();
        assert!(matches!(err, RegistryError::UnknownKey(_)));
        assert!(err.to_string().contains("unknown registry key"));
    }

    #[test]
    fn link_unknown_key_errors() {
        let mut reg = Registry::new();
        let k = reg.publish(record("A", "1.0"));
        let ghost = ServiceKey(999);
        assert!(reg.link_new_release(k, ghost).is_err());
        assert!(reg.link_new_release(ghost, k).is_err());
        assert!(reg.newer_release(ghost).is_err());
    }

    #[test]
    fn confidence_publication() {
        let mut reg = Registry::new();
        let k = reg.publish(record("A", "1.0"));
        assert!(reg.get(k).unwrap().confidence.is_none());
        reg.publish_confidence(k, PublishedConfidence::new(1e-3, 0.99))
            .unwrap();
        let conf = reg.get(k).unwrap().confidence.unwrap();
        assert_eq!(conf.pfd_target, 1e-3);
        assert_eq!(conf.confidence, 0.99);
    }

    #[test]
    fn record_with_confidence_builder() {
        let r = record("A", "1.0").with_confidence(PublishedConfidence::new(1e-4, 0.9));
        assert!(r.confidence.is_some());
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn confidence_out_of_range_panics() {
        let _ = PublishedConfidence::new(1e-3, 1.5);
    }

    #[test]
    fn service_key_display() {
        let mut reg = Registry::new();
        let k = reg.publish(record("A", "1.0"));
        assert!(k.to_string().starts_with("uddi:"));
    }
}
