//! WS-Notification-style upgrade announcements.
//!
//! Section 7.2 of the paper lists ways a consumer can learn that a
//! component WS has been upgraded: a registry release link (see
//! [`crate::registry`]), a notification service, or an explicit callback
//! to subscribers. This module models the latter two with a simple topic
//! broker: providers publish [`UpgradeNotice`]s, consumers subscribe and
//! drain their per-subscription inbox.

use std::collections::HashMap;

/// An announcement that a new release of a service is available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpgradeNotice {
    /// The service being upgraded.
    pub service: String,
    /// The release consumers have been using.
    pub old_release: String,
    /// The newly available release.
    pub new_release: String,
    /// Where the new release can be invoked.
    pub new_uri: String,
}

/// A handle identifying one subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(u64);

/// A topic-per-service notification broker.
///
/// # Example
///
/// ```
/// use wsu_wstack::notify::{NotificationBroker, UpgradeNotice};
///
/// let mut broker = NotificationBroker::new();
/// let sub = broker.subscribe("Quote");
/// broker.publish(UpgradeNotice {
///     service: "Quote".into(),
///     old_release: "1.0".into(),
///     new_release: "1.1".into(),
///     new_uri: "http://node1/quote-v11".into(),
/// });
/// let notices = broker.drain(sub);
/// assert_eq!(notices.len(), 1);
/// assert_eq!(notices[0].new_release, "1.1");
/// ```
#[derive(Debug, Default)]
pub struct NotificationBroker {
    next_id: u64,
    // subscription -> (topic, inbox)
    subscriptions: HashMap<SubscriptionId, (String, Vec<UpgradeNotice>)>,
}

impl NotificationBroker {
    /// Creates an empty broker.
    pub fn new() -> NotificationBroker {
        NotificationBroker::default()
    }

    /// Subscribes to upgrade notices for `service`.
    pub fn subscribe(&mut self, service: &str) -> SubscriptionId {
        let id = SubscriptionId(self.next_id);
        self.next_id += 1;
        self.subscriptions
            .insert(id, (service.to_owned(), Vec::new()));
        id
    }

    /// Cancels a subscription. Returns `true` if it existed.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        self.subscriptions.remove(&id).is_some()
    }

    /// Publishes a notice to every matching subscription. Returns how many
    /// subscribers were notified.
    pub fn publish(&mut self, notice: UpgradeNotice) -> usize {
        let mut delivered = 0;
        for (topic, inbox) in self.subscriptions.values_mut() {
            if *topic == notice.service {
                inbox.push(notice.clone());
                delivered += 1;
            }
        }
        delivered
    }

    /// Removes and returns all pending notices for a subscription.
    /// Returns an empty vector for an unknown subscription.
    pub fn drain(&mut self, id: SubscriptionId) -> Vec<UpgradeNotice> {
        self.subscriptions
            .get_mut(&id)
            .map(|(_, inbox)| std::mem::take(inbox))
            .unwrap_or_default()
    }

    /// Number of live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.subscriptions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn notice(service: &str) -> UpgradeNotice {
        UpgradeNotice {
            service: service.into(),
            old_release: "1.0".into(),
            new_release: "1.1".into(),
            new_uri: format!("http://node/{service}/1.1"),
        }
    }

    #[test]
    fn subscribe_publish_drain() {
        let mut broker = NotificationBroker::new();
        let a = broker.subscribe("X");
        let b = broker.subscribe("X");
        let other = broker.subscribe("Y");
        assert_eq!(broker.publish(notice("X")), 2);
        assert_eq!(broker.drain(a).len(), 1);
        assert_eq!(broker.drain(b).len(), 1);
        assert!(broker.drain(other).is_empty());
    }

    #[test]
    fn drain_empties_inbox() {
        let mut broker = NotificationBroker::new();
        let sub = broker.subscribe("X");
        broker.publish(notice("X"));
        assert_eq!(broker.drain(sub).len(), 1);
        assert!(broker.drain(sub).is_empty());
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut broker = NotificationBroker::new();
        let sub = broker.subscribe("X");
        assert!(broker.unsubscribe(sub));
        assert!(!broker.unsubscribe(sub));
        assert_eq!(broker.publish(notice("X")), 0);
        assert_eq!(broker.subscriber_count(), 0);
    }

    #[test]
    fn unknown_subscription_drains_empty() {
        let mut broker = NotificationBroker::new();
        let sub = broker.subscribe("X");
        broker.unsubscribe(sub);
        assert!(broker.drain(sub).is_empty());
    }

    #[test]
    fn notices_preserve_order() {
        let mut broker = NotificationBroker::new();
        let sub = broker.subscribe("X");
        let mut n1 = notice("X");
        n1.new_release = "1.1".into();
        let mut n2 = notice("X");
        n2.new_release = "1.2".into();
        broker.publish(n1);
        broker.publish(n2);
        let drained = broker.drain(sub);
        assert_eq!(drained[0].new_release, "1.1");
        assert_eq!(drained[1].new_release, "1.2");
    }
}
