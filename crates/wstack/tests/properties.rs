//! Property-style tests of the simulated WS stack.
//!
//! Originally written with `proptest`; rewritten as deterministic
//! seeded-loop checks (no external dev-dependencies — see the note in
//! `crates/simcore/tests/properties.rs`).

use wsu_simcore::rng::{MasterSeed, StreamRng};
use wsu_wstack::message::{Envelope, Value};
use wsu_wstack::outcome::{OutcomeProfile, ResponseClass};
use wsu_wstack::registry::{Registry, ServiceRecord};
use wsu_wstack::soap::parse_envelope;
use wsu_wstack::wsdl::{Operation, ServiceDescription, XsdType};

const CASES: usize = 48;

fn rng_for(test: &str) -> StreamRng {
    MasterSeed::new(0x57_53_54_41_43_4B_50_52).stream(test)
}

fn lowercase_name(rng: &mut StreamRng, min_len: usize, max_len: usize) -> String {
    let len = min_len + rng.next_below((max_len - min_len + 1) as u64) as usize;
    (0..len)
        .map(|_| (b'a' + rng.next_below(26) as u8) as char)
        .collect()
}

fn arb_value(rng: &mut StreamRng) -> Value {
    match rng.next_below(4) {
        0 => Value::Int(rng.next_u64() as i64),
        1 => Value::Double(rng.next_u64() as f64 / u64::MAX as f64 * 2e9 - 1e9),
        2 => {
            let len = rng.next_below(21) as usize;
            let alphabet: Vec<char> = ('a'..='z')
                .chain('A'..='Z')
                .chain('0'..='9')
                .chain(std::iter::once(' '))
                .collect();
            Value::Str(
                (0..len)
                    .map(|_| alphabet[rng.next_below(alphabet.len() as u64) as usize])
                    .collect(),
            )
        }
        _ => Value::Bool(rng.next_below(2) == 0),
    }
}

/// set_part/part round-trips arbitrary names and values, keeping one
/// entry per name.
#[test]
fn envelope_parts_round_trip() {
    let mut rng = rng_for("envelope_parts");
    for _ in 0..CASES {
        let n = rng.next_below(20) as usize;
        let entries: Vec<(String, Value)> = (0..n)
            .map(|_| (lowercase_name(&mut rng, 1, 8), arb_value(&mut rng)))
            .collect();
        let mut envelope = Envelope::request("op");
        let mut expected = std::collections::HashMap::new();
        for (name, value) in &entries {
            envelope.set_part(name.clone(), value.clone());
            expected.insert(name.clone(), value.clone());
        }
        assert_eq!(envelope.parts().len(), expected.len());
        for (name, value) in &expected {
            assert_eq!(envelope.part(name), Some(value));
        }
        // The XML-like rendering mentions every part name.
        let xml = envelope.to_xml_like();
        for name in expected.keys() {
            let needle = format!("<{name} ");
            assert!(xml.contains(&needle), "missing part element for {name}");
        }
    }
}

/// Outcome profiles built from any normalised triple sample only
/// positive-probability classes, and class indexing round-trips.
#[test]
fn outcome_profile_support() {
    let mut rng = rng_for("outcome_support");
    for _ in 0..CASES {
        let raw = (
            rng.next_u64() as f64 / u64::MAX as f64,
            rng.next_u64() as f64 / u64::MAX as f64,
            rng.next_u64() as f64 / u64::MAX as f64,
        );
        let total = raw.0 + raw.1 + raw.2;
        if total <= 1e-9 {
            continue;
        }
        let (mut cr, mut er, mut ner);
        cr = raw.0 / total;
        er = raw.1 / total;
        ner = 1.0 - cr - er;
        if ner < 0.0 {
            // Floating-point slack: fold it into the largest component.
            er += ner;
            ner = 0.0;
            if er < 0.0 {
                cr += er;
                er = 0.0;
            }
        }
        let profile = OutcomeProfile::new(cr, er, ner);
        let mut sample_rng = StreamRng::from_seed(rng.next_u64());
        for _ in 0..50 {
            let class = profile.sample(&mut sample_rng);
            assert!(profile.prob(class) > 0.0);
            assert_eq!(ResponseClass::from_index(class.index()), class);
        }
    }
}

/// Registry publish/find/withdraw maintains exact membership for any
/// sequence of names.
#[test]
fn registry_membership() {
    let mut rng = rng_for("registry_membership");
    for _ in 0..CASES {
        let n = 1 + rng.next_below(29) as usize;
        let names: Vec<String> = (0..n).map(|_| lowercase_name(&mut rng, 1, 6)).collect();
        let mut registry = Registry::new();
        let keys: Vec<_> = names
            .iter()
            .map(|n| {
                registry.publish(ServiceRecord::new(
                    n.clone(),
                    format!("http://{n}"),
                    "cat",
                    ServiceDescription::new(n.clone(), "1.0"),
                ))
            })
            .collect();
        assert_eq!(registry.len(), names.len());
        for (key, name) in keys.iter().zip(&names) {
            assert_eq!(&registry.get(*key).unwrap().name, name);
        }
        // Name search finds exactly the matching publications.
        for name in &names {
            let expected = names.iter().filter(|n| *n == name).count();
            assert_eq!(registry.find_by_name(name).len(), expected);
        }
        // Withdraw everything; the registry drains.
        for key in keys {
            registry.withdraw(key).unwrap();
        }
        assert!(registry.is_empty());
    }
}

/// WSDL confidence pairing preserves the base operation untouched for
/// any operation shape.
#[test]
fn paired_confidence_preserves_base() {
    let mut rng = rng_for("paired_confidence");
    for _ in 0..CASES {
        let op_name = lowercase_name(&mut rng, 1, 10);
        let input_count = rng.next_below(5) as usize;
        let inputs: Vec<String> = (0..input_count)
            .map(|_| lowercase_name(&mut rng, 1, 6))
            .collect();
        let mut operation = Operation::new(op_name.clone());
        for (i, input) in inputs.iter().enumerate() {
            operation = operation.with_input(format!("{input}{i}"), XsdType::Str);
        }
        operation = operation.with_output("result", XsdType::Str);
        let mut description = ServiceDescription::new("Svc", "1.0");
        description.add_operation(operation);
        let before = description.operation(&op_name).unwrap().clone();
        description
            .add_paired_confidence_operation(&op_name)
            .unwrap();
        assert_eq!(description.operation(&op_name).unwrap(), &before);
        let paired = description.operation(&format!("{op_name}Conf")).unwrap();
        assert_eq!(paired.request_parts(), before.request_parts());
        assert_eq!(
            paired.response_parts().len(),
            before.response_parts().len() + 1
        );
    }
}

/// The wire rendering round-trips through the parser for arbitrary
/// operations and parts.
#[test]
fn wire_round_trip() {
    let mut rng = rng_for("wire_round_trip");
    for _ in 0..CASES {
        let op = lowercase_name(&mut rng, 1, 10);
        let n = rng.next_below(12) as usize;
        let mut envelope = Envelope::request(op);
        for _ in 0..n {
            envelope.set_part(lowercase_name(&mut rng, 1, 8), arb_value(&mut rng));
        }
        let parsed = parse_envelope(&envelope.to_xml_like()).unwrap();
        assert_eq!(parsed, envelope);
    }
}
