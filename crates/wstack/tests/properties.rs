//! Property-based tests of the simulated WS stack.

use proptest::prelude::*;

use wsu_simcore::rng::StreamRng;
use wsu_wstack::message::{Envelope, Value};
use wsu_wstack::outcome::{OutcomeProfile, ResponseClass};
use wsu_wstack::registry::{Registry, ServiceRecord};
use wsu_wstack::soap::parse_envelope;
use wsu_wstack::wsdl::{Operation, ServiceDescription, XsdType};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        (-1e9f64..1e9).prop_map(Value::Double),
        "[a-zA-Z0-9 ]{0,20}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    /// set_part/part round-trips arbitrary names and values, keeping one
    /// entry per name.
    #[test]
    fn envelope_parts_round_trip(
        entries in prop::collection::vec(("[a-z]{1,8}", arb_value()), 0..20),
    ) {
        let mut envelope = Envelope::request("op");
        let mut expected = std::collections::HashMap::new();
        for (name, value) in &entries {
            envelope.set_part(name.clone(), value.clone());
            expected.insert(name.clone(), value.clone());
        }
        prop_assert_eq!(envelope.parts().len(), expected.len());
        for (name, value) in &expected {
            prop_assert_eq!(envelope.part(name), Some(value));
        }
        // The XML-like rendering mentions every part name.
        let xml = envelope.to_xml_like();
        for name in expected.keys() {
            let needle = format!("<{name} ");
            let found = xml.contains(&needle);
            prop_assert!(found, "missing part element for {}", name);
        }
    }

    /// Outcome profiles built from any normalised triple sample only
    /// positive-probability classes, and class indexing round-trips.
    #[test]
    fn outcome_profile_support(raw in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), seed in any::<u64>()) {
        let total = raw.0 + raw.1 + raw.2;
        prop_assume!(total > 1e-9);
        let (mut cr, mut er, mut ner);
        cr = raw.0 / total;
        er = raw.1 / total;
        ner = 1.0 - cr - er;
        if ner < 0.0 {
            // Floating-point slack: fold it into the largest component.
            er += ner;
            ner = 0.0;
            if er < 0.0 {
                cr += er;
                er = 0.0;
            }
        }
        let profile = OutcomeProfile::new(cr, er, ner);
        let mut rng = StreamRng::from_seed(seed);
        for _ in 0..50 {
            let class = profile.sample(&mut rng);
            prop_assert!(profile.prob(class) > 0.0);
            prop_assert_eq!(ResponseClass::from_index(class.index()), class);
        }
    }

    /// Registry publish/find/withdraw maintains exact membership for any
    /// sequence of names.
    #[test]
    fn registry_membership(names in prop::collection::vec("[a-z]{1,6}", 1..30)) {
        let mut registry = Registry::new();
        let keys: Vec<_> = names
            .iter()
            .map(|n| {
                registry.publish(ServiceRecord::new(
                    n.clone(),
                    format!("http://{n}"),
                    "cat",
                    ServiceDescription::new(n.clone(), "1.0"),
                ))
            })
            .collect();
        prop_assert_eq!(registry.len(), names.len());
        for (key, name) in keys.iter().zip(&names) {
            prop_assert_eq!(&registry.get(*key).unwrap().name, name);
        }
        // Name search finds exactly the matching publications.
        for name in &names {
            let expected = names.iter().filter(|n| *n == name).count();
            prop_assert_eq!(registry.find_by_name(name).len(), expected);
        }
        // Withdraw everything; the registry drains.
        for key in keys {
            registry.withdraw(key).unwrap();
        }
        prop_assert!(registry.is_empty());
    }

    /// WSDL confidence pairing preserves the base operation untouched for
    /// any operation shape.
    #[test]
    fn paired_confidence_preserves_base(
        op_name in "[a-z]{1,10}",
        inputs in prop::collection::vec("[a-z]{1,6}", 0..5),
    ) {
        let mut operation = Operation::new(op_name.clone());
        for (i, input) in inputs.iter().enumerate() {
            operation = operation.with_input(format!("{input}{i}"), XsdType::Str);
        }
        operation = operation.with_output("result", XsdType::Str);
        let mut description = ServiceDescription::new("Svc", "1.0");
        description.add_operation(operation);
        let before = description.operation(&op_name).unwrap().clone();
        description.add_paired_confidence_operation(&op_name).unwrap();
        prop_assert_eq!(description.operation(&op_name).unwrap(), &before);
        let paired = description.operation(&format!("{op_name}Conf")).unwrap();
        prop_assert_eq!(paired.request_parts(), before.request_parts());
        prop_assert_eq!(paired.response_parts().len(), before.response_parts().len() + 1);
    }

    /// The wire rendering round-trips through the parser for arbitrary
    /// operations and parts.
    #[test]
    fn wire_round_trip(
        op in "[a-z]{1,10}",
        entries in prop::collection::vec(("[a-z]{1,8}", arb_value()), 0..12),
    ) {
        let mut envelope = Envelope::request(op);
        for (name, value) in &entries {
            envelope.set_part(name.clone(), value.clone());
        }
        let parsed = parse_envelope(&envelope.to_xml_like()).unwrap();
        prop_assert_eq!(parsed, envelope);
    }
}
