//! Edge cases of the Prometheus-text rendering: label escaping, empty
//! registries, zero-observation histograms and merges of registries
//! with disjoint label sets.

use wsu_obs::MetricsRegistry;

#[test]
fn label_values_escape_backslash_quote_and_newline() {
    let mut reg = MetricsRegistry::new();
    reg.inc_counter("c", &[("path", "a\\b")]);
    reg.inc_counter("c", &[("path", "say \"hi\"")]);
    reg.inc_counter("c", &[("path", "line1\nline2")]);
    let snap = reg.snapshot();
    assert!(snap.contains("c{path=\"a\\\\b\"} 1"), "{snap}");
    assert!(snap.contains("c{path=\"say \\\"hi\\\"\"} 1"), "{snap}");
    assert!(snap.contains("c{path=\"line1\\nline2\"} 1"), "{snap}");
    // No raw newline may survive inside a label value: every rendered
    // line must still be a complete sample or comment.
    for line in snap.lines() {
        assert!(
            line.starts_with("# TYPE") || line.ends_with(" 1"),
            "broken line: {line:?}"
        );
    }
}

#[test]
fn escaped_labels_round_trip_through_reads() {
    let mut reg = MetricsRegistry::new();
    let labels = [("k", "v\\1\"2\n3")];
    reg.add_counter("c", &labels, 7);
    assert_eq!(reg.counter("c", &labels), 7);
}

#[test]
fn empty_registry_renders_an_empty_snapshot() {
    let reg = MetricsRegistry::new();
    assert!(reg.is_empty());
    assert_eq!(reg.snapshot(), "");
}

#[test]
fn histogram_with_zero_observations_renders_zero_series() {
    let mut reg = MetricsRegistry::new();
    reg.set_buckets("h", &[0.5, 1.0]);
    reg.histogram_id("h", &[("k", "v")]);
    let snap = reg.snapshot();
    assert!(snap.contains("# TYPE h histogram"), "{snap}");
    assert!(snap.contains("h_bucket{k=\"v\",le=\"0.5\"} 0"), "{snap}");
    assert!(snap.contains("h_bucket{k=\"v\",le=\"1\"} 0"), "{snap}");
    assert!(snap.contains("h_bucket{k=\"v\",le=\"+Inf\"} 0"), "{snap}");
    assert!(snap.contains("h_sum{k=\"v\"} 0"), "{snap}");
    assert!(snap.contains("h_count{k=\"v\"} 0"), "{snap}");
}

#[test]
fn merge_with_disjoint_label_sets_keeps_both_series() {
    let mut a = MetricsRegistry::new();
    let mut b = MetricsRegistry::new();
    a.inc_counter("reqs", &[("release", "old")]);
    b.add_counter("reqs", &[("release", "new")], 3);
    a.set_gauge("g", &[("zone", "a")], 1.0);
    b.set_gauge("g", &[("zone", "b")], 2.0);
    a.observe("h", &[("release", "old")], 0.1);
    b.observe("h", &[("release", "new")], 0.2);
    b.observe_sketch("s", &[("release", "new")], 0.3);
    a.merge(&b);
    assert_eq!(a.counter("reqs", &[("release", "old")]), 1);
    assert_eq!(a.counter("reqs", &[("release", "new")]), 3);
    assert_eq!(a.gauge("g", &[("zone", "a")]), Some(1.0));
    assert_eq!(a.gauge("g", &[("zone", "b")]), Some(2.0));
    assert_eq!(a.histogram_count("h", &[("release", "old")]), 1);
    assert_eq!(a.histogram_count("h", &[("release", "new")]), 1);
    assert_eq!(a.sketch("s", &[("release", "new")]).unwrap().count(), 1);
    let snap = a.snapshot();
    // One `# TYPE` header per metric name, shared by both label sets.
    assert_eq!(snap.matches("# TYPE reqs counter").count(), 1, "{snap}");
    assert!(snap.contains("reqs{release=\"new\"} 3"), "{snap}");
    assert!(snap.contains("reqs{release=\"old\"} 1"), "{snap}");
}

#[test]
fn merge_into_empty_registry_clones_everything() {
    let mut src = MetricsRegistry::new();
    src.inc_counter("c", &[]);
    src.observe("h", &[], 0.25);
    src.observe_sketch("s", &[], 0.75);
    let mut dst = MetricsRegistry::new();
    dst.merge(&src);
    assert_eq!(dst, src);
    assert_eq!(dst.snapshot(), src.snapshot());
}
