//! Acceptance sweep: `QuantileSketch` estimates stay within the stated
//! relative-error bound of exact sorted-array quantiles across 32
//! seeds and several response-time-like distributions.

use wsu_obs::quantile::QuantileSketch;
use wsu_obs::MetricsRegistry;

/// SplitMix64 — a self-contained deterministic generator, so the sweep
/// needs no dependency on the simulation's RNG.
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// Draws one value from the given distribution shape.
fn draw(shape: usize, rng: &mut SplitMix) -> f64 {
    let u = rng.next_f64();
    match shape {
        // Uniform response times in [0.1, 2.1] s — the paper's range.
        0 => 0.1 + 2.0 * u,
        // Exponential with mean 0.5 s (heavy right tail).
        1 => -0.5 * (1.0 - u).ln().max(-40.0),
        // Log-uniform over [1e-4, 1e2] s (six decades).
        2 => 10f64.powf(u * 6.0 - 4.0),
        // Bimodal: fast path at ~0.2 s, timeout spike at ~2.0 s.
        _ => {
            if u < 0.9 {
                0.2 + 0.01 * rng.next_f64()
            } else {
                2.0 + 0.1 * rng.next_f64()
            }
        }
    }
}

#[test]
fn sketch_matches_exact_quantiles_over_32_seeds() {
    for seed in 0..32u64 {
        for shape in 0..4 {
            let mut rng = SplitMix(0xD15E_A5E0 ^ (seed << 8) ^ shape as u64);
            let mut sketch = QuantileSketch::default();
            let mut values = Vec::with_capacity(2000);
            for _ in 0..2000 {
                let v = draw(shape, &mut rng);
                sketch.observe(v);
                values.push(v);
            }
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for q in [0.5, 0.9, 0.99, 0.999] {
                let exact = exact_quantile(&values, q);
                let est = sketch.quantile(q).expect("non-empty sketch");
                let rel = (est - exact).abs() / exact;
                assert!(
                    rel <= sketch.alpha() * 1.0001,
                    "seed={seed} shape={shape} q={q} exact={exact} est={est} rel={rel}"
                );
            }
        }
    }
}

/// Shard folding must be deterministic: folding the same per-shard
/// registries in the same order — which is what the parallel
/// replication runner guarantees at any `--jobs N` — renders
/// byte-identical snapshots, and the integer-backed quantile lines are
/// byte-identical even against a single-pass registry (only the
/// float `_sum` line is grouping-sensitive, as with histograms).
#[test]
fn sharded_registry_merge_is_deterministic_and_rank_exact() {
    for seed in 0..32u64 {
        let mut rng = SplitMix(0xFEED_F00D ^ seed);
        let mut whole = MetricsRegistry::new();
        let mut shards: Vec<MetricsRegistry> = (0..4).map(|_| MetricsRegistry::new()).collect();
        for i in 0..400 {
            let v = draw(i % 4, &mut rng);
            whole.observe_sketch("wsu_rt", &[("release", "old")], v);
            shards[i % 4].observe_sketch("wsu_rt", &[("release", "old")], v);
        }
        let fold = |shards: &[MetricsRegistry]| {
            let mut merged = MetricsRegistry::new();
            for shard in shards {
                merged.merge(shard);
            }
            merged
        };
        let merged = fold(&shards);
        // Same shard sequence, second fold: byte-identical snapshot.
        assert_eq!(
            merged.snapshot(),
            fold(&shards).snapshot(),
            "seed={seed}: shard folding must be deterministic"
        );
        // Quantile and count lines are integer-backed, so they even
        // match a single-pass registry byte for byte.
        let non_sum = |snap: String| -> Vec<String> {
            snap.lines()
                .filter(|l| !l.starts_with("wsu_rt_sum"))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(
            non_sum(merged.snapshot()),
            non_sum(whole.snapshot()),
            "seed={seed}: rank queries must not depend on sharding"
        );
        let merged_sketch = merged.sketch("wsu_rt", &[("release", "old")]).unwrap();
        let whole_sketch = whole.sketch("wsu_rt", &[("release", "old")]).unwrap();
        let rel = (merged_sketch.sum() - whole_sketch.sum()).abs() / whole_sketch.sum();
        assert!(rel < 1e-12, "seed={seed}: sums differ beyond rounding");
    }
}
