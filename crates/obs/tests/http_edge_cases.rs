//! Integration tests for the shared HTTP layer's failure semantics —
//! regression coverage for the three PR 8 bugs plus the bounded-read
//! and shutdown behaviours around them:
//!
//! 1. `http_get` used `read_to_string`, so any non-UTF-8 body (or a
//!    body on a held-open keep-alive connection) turned into an
//!    `InvalidData` error / a hang-until-EOF. It must now return the
//!    raw bytes and honour `Content-Length` framing.
//! 2. An empty or malformed request head was parsed as method `""` and
//!    answered `405`. Malformed heads must earn `400`; genuine method
//!    mismatches must earn `405` **with an `Allow` header**.
//! 3. `MetricsExporter::stop` woke its accept loop with a throwaway
//!    connect to the *bound* address — which is not connectable when
//!    bound to `0.0.0.0` — and could hang the join. Shutdown must
//!    complete promptly for any bind address.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use wsu_obs::export::MetricsExporter;
use wsu_obs::http::{http_get, HttpClient};

/// Opens a raw client connection to `addr` with short timeouts.
fn raw_connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// Writes `request` and returns everything the server sends back.
///
/// Deliberately tolerant of write/read errors: a server that rejects
/// an oversized head may reset the connection while the client is
/// still writing (or before the client drains the response), and the
/// interesting bytes are whatever made it back before that.
fn raw_roundtrip(addr: SocketAddr, request: &[u8]) -> String {
    let mut stream = raw_connect(addr);
    let _ = stream.write_all(request);
    let _ = stream.shutdown(Shutdown::Write);
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
        }
    }
    String::from_utf8_lossy(&response).into_owned()
}

/// A one-shot raw HTTP server: accepts a single connection, consumes
/// the request head, writes `response` verbatim, then runs `after`.
fn one_shot_server(
    response: Vec<u8>,
    hold_open: bool,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        // Drain the request head before answering.
        let mut buf = [0u8; 1024];
        let mut head = Vec::new();
        loop {
            let n = stream.read(&mut buf).expect("read request");
            if n == 0 {
                break;
            }
            head.extend_from_slice(&buf[..n]);
            if head.windows(4).any(|w| w == b"\r\n\r\n") {
                break;
            }
        }
        stream.write_all(&response).expect("write response");
        stream.flush().expect("flush");
        if hold_open {
            // Keep the connection open: a client that frames on
            // Content-Length returns immediately; a read-to-EOF client
            // blocks here until its timeout.
            std::thread::sleep(Duration::from_secs(8));
        }
    });
    (addr, handle)
}

// ---------------------------------------------------------------
// Bug 1: http_get must handle non-UTF-8 bodies and Content-Length.
// ---------------------------------------------------------------

#[test]
fn http_get_returns_non_utf8_bodies() {
    let body: &[u8] = &[0xff, 0xfe, 0x00, 0x01, 0x80, 0xc3];
    let mut response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    response.extend_from_slice(body);
    let (addr, handle) = one_shot_server(response, false);
    let resp = http_get(addr, "/blob").expect("non-UTF-8 body must not be an error");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.bytes, body, "raw bytes must round-trip unmangled");
    // The lossy text view substitutes, never errors.
    assert!(resp.body.contains('\u{fffd}'));
    handle.join().expect("server thread");
}

#[test]
fn http_get_honours_content_length_on_held_open_connection() {
    let mut response =
        b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 5\r\n\r\n".to_vec();
    response.extend_from_slice(b"hello");
    let (addr, _handle) = one_shot_server(response, true);
    let started = Instant::now();
    let resp = http_get(addr, "/held").expect("framed body");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, "hello");
    // Content-Length framing returns as soon as 5 bytes arrive; the
    // old read-to-EOF implementation sat on the open socket until its
    // 5 s timeout killed it.
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "http_get waited for EOF instead of honouring Content-Length ({:?})",
        started.elapsed()
    );
    // The server thread sleeps holding the socket; don't join it.
}

// ---------------------------------------------------------------
// Bug 2: malformed heads are 400; method mismatches are 405+Allow.
// ---------------------------------------------------------------

#[test]
fn malformed_request_line_is_400_not_405() {
    let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
    let response = raw_roundtrip(exporter.local_addr(), b"total garbage\r\n\r\n");
    assert!(
        response.starts_with("HTTP/1.1 400 "),
        "malformed head must be 400, got: {response:?}"
    );
    exporter.shutdown();
}

#[test]
fn bare_newline_head_is_answered_400() {
    let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
    let response = raw_roundtrip(exporter.local_addr(), b"\r\n\r\n");
    assert!(
        response.starts_with("HTTP/1.1 400 "),
        "empty request line must be 400, got: {response:?}"
    );
    exporter.shutdown();
}

#[test]
fn clean_close_without_bytes_is_silent() {
    let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
    let mut stream = raw_connect(exporter.local_addr());
    stream.shutdown(Shutdown::Write).expect("shutdown write");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    assert!(
        response.is_empty(),
        "a clean close before any request deserves no response, got: {:?}",
        String::from_utf8_lossy(&response)
    );
    exporter.shutdown();
}

#[test]
fn wrong_method_is_405_with_allow_header() {
    let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
    let response = raw_roundtrip(
        exporter.local_addr(),
        b"POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    assert!(
        response.starts_with("HTTP/1.1 405 "),
        "POST on a GET route must be 405, got: {response:?}"
    );
    assert!(
        response.to_ascii_lowercase().contains("allow: get"),
        "405 must carry an Allow header, got: {response:?}"
    );
    exporter.shutdown();
}

#[test]
fn oversized_head_is_431() {
    let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
    let mut request = b"GET /metrics HTTP/1.1\r\nHost: x\r\n".to_vec();
    // Push the head well past the 8 KiB bound.
    for i in 0..600 {
        request.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "y".repeat(20)).as_bytes());
    }
    request.extend_from_slice(b"\r\n");
    let response = raw_roundtrip(exporter.local_addr(), &request);
    assert!(
        response.starts_with("HTTP/1.1 431 "),
        "oversized head must be 431, got: {:?}",
        &response[..response.len().min(64)]
    );
    exporter.shutdown();
}

#[test]
fn slow_loris_partial_head_times_out_with_408() {
    let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
    let mut stream = raw_connect(exporter.local_addr());
    // Send a partial head and then stall: the server's 2 s read
    // timeout must cut the connection off with 408, not hang.
    stream.write_all(b"GET /metrics HT").expect("write partial");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("HTTP/1.1 408 "),
        "stalled mid-head must be 408, got: {text:?}"
    );
    exporter.shutdown();
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
    exporter.publish_metrics("m 1\n");
    let mut client =
        HttpClient::connect(exporter.local_addr(), Duration::from_secs(5)).expect("connect");
    for _ in 0..3 {
        let resp = client.request("GET", "/metrics", b"").expect("request");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "m 1\n");
        assert!(resp.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }
    let health = client.request("GET", "/health", b"").expect("health");
    assert_eq!(health.status, 200);
    exporter.shutdown();
}

// ---------------------------------------------------------------
// Bug 3: shutdown must complete promptly for any bind address.
// ---------------------------------------------------------------

/// Runs `f` on a helper thread and fails the test if it does not
/// finish within `timeout` — the watchdog that turns a hung join into
/// a test failure instead of a hung suite.
fn must_finish_within(timeout: Duration, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(timeout)
        .expect("operation hung past the watchdog");
}

#[test]
fn shutdown_completes_when_bound_to_unspecified_address() {
    // Pre-fix, stop() tried to connect to 0.0.0.0:<port> to unblock a
    // *blocking* accept; platforms that refuse that connect left the
    // join hanging forever. The poll loop bounds shutdown regardless.
    let exporter = MetricsExporter::bind("0.0.0.0:0").expect("bind 0.0.0.0");
    let addr = SocketAddr::from(([127, 0, 0, 1], exporter.local_addr().port()));
    let health = http_get(addr, "/health").expect("health over loopback");
    assert_eq!(health.status, 200);
    must_finish_within(Duration::from_secs(5), move || exporter.shutdown());
}

#[test]
fn shutdown_completes_with_no_clients_ever() {
    let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
    must_finish_within(Duration::from_secs(5), move || exporter.shutdown());
}

#[test]
fn concurrent_gets_during_shutdown_do_not_wedge() {
    let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
    exporter.publish_metrics("m 1\n");
    let addr = exporter.local_addr();
    let scrapers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                // Outcomes legitimately vary: complete responses before
                // the flag flips, refused connects after the listener
                // dies, resets in between. None may hang or panic.
                for _ in 0..50 {
                    let _ = http_get(addr, "/metrics");
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    must_finish_within(Duration::from_secs(10), move || exporter.shutdown());
    for scraper in scrapers {
        scraper.join().expect("scraper thread");
    }
}
