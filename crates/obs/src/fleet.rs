//! Per-release fleet gauges for staged canary chains.
//!
//! A weighted fleet exposes two things an operator watches during an
//! online upgrade that the pairwise metrics don't carry: each release's
//! current **traffic weight** and its **chain stage**. [`FleetGauges`]
//! publishes both into a [`SharedRegistry`], plus counters for the
//! fleet-level lifecycle decisions (incidents, recoveries, promotions,
//! rollbacks, substitutions).
//!
//! Release labels for indices 0–7 are static strings, so the per-change
//! update path allocates nothing for realistic fleet sizes; larger
//! indices collapse into the `"8+"` label.

use crate::metrics::SharedRegistry;

/// The static label for a release index. Fleets larger than eight
/// releases collapse the overflow into one `"8+"` series.
fn release_label(index: usize) -> &'static str {
    match index {
        0 => "0",
        1 => "1",
        2 => "2",
        3 => "3",
        4 => "4",
        5 => "5",
        6 => "6",
        7 => "7",
        _ => "8+",
    }
}

/// Publishes per-release weight/stage gauges and fleet lifecycle
/// counters into a shared metrics registry.
#[derive(Debug, Clone)]
pub struct FleetGauges {
    registry: SharedRegistry,
}

impl FleetGauges {
    /// Wraps a shared registry.
    pub fn new(registry: SharedRegistry) -> FleetGauges {
        FleetGauges { registry }
    }

    /// Sets `wsu_fleet_weight{release="i"}` — the release's current
    /// traffic weight share.
    pub fn set_weight(&self, release: usize, weight: f64) {
        self.registry.set_gauge(
            "wsu_fleet_weight",
            &[("release", release_label(release))],
            weight,
        );
    }

    /// Sets `wsu_fleet_stage{release="i"}` — the release's position in
    /// the canary chain (0 = the initial stable release).
    pub fn set_stage(&self, release: usize, stage: usize) {
        self.registry.set_gauge(
            "wsu_fleet_stage",
            &[("release", release_label(release))],
            stage as f64,
        );
    }

    /// Counts a declared incident, labeled by the recovery strategy
    /// that handles it.
    pub fn incident(&self, strategy: &str) {
        self.registry
            .inc_counter("wsu_fleet_incidents_total", &[("strategy", strategy)]);
    }

    /// Counts a successful recovery probe, labeled by strategy.
    pub fn recovered(&self, strategy: &str) {
        self.registry
            .inc_counter("wsu_fleet_recoveries_total", &[("strategy", strategy)]);
    }

    /// Counts a canary promotion.
    pub fn promotion(&self) {
        self.registry.inc_counter("wsu_fleet_promotions_total", &[]);
    }

    /// Counts a canary demotion (rollback).
    pub fn rollback(&self) {
        self.registry.inc_counter("wsu_fleet_rollbacks_total", &[]);
    }

    /// Counts an atomic substitution (a registry stand-in bound as a
    /// replacement release).
    pub fn substitution(&self) {
        self.registry
            .inc_counter("wsu_fleet_substitutions_total", &[]);
    }

    /// The wrapped registry.
    pub fn registry(&self) -> &SharedRegistry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_and_counters_land_in_the_registry() {
        let registry = SharedRegistry::new();
        let gauges = FleetGauges::new(registry.clone());
        gauges.set_weight(0, 0.9);
        gauges.set_weight(1, 0.1);
        gauges.set_stage(1, 2);
        gauges.incident("restart");
        gauges.recovered("restart");
        gauges.promotion();
        gauges.rollback();
        gauges.substitution();
        registry.with(|r| {
            assert_eq!(r.gauge("wsu_fleet_weight", &[("release", "0")]), Some(0.9));
            assert_eq!(r.gauge("wsu_fleet_weight", &[("release", "1")]), Some(0.1));
            assert_eq!(r.gauge("wsu_fleet_stage", &[("release", "1")]), Some(2.0));
            assert_eq!(
                r.counter("wsu_fleet_incidents_total", &[("strategy", "restart")]),
                1
            );
            assert_eq!(
                r.counter("wsu_fleet_recoveries_total", &[("strategy", "restart")]),
                1
            );
            assert_eq!(r.counter("wsu_fleet_promotions_total", &[]), 1);
            assert_eq!(r.counter("wsu_fleet_rollbacks_total", &[]), 1);
            assert_eq!(r.counter("wsu_fleet_substitutions_total", &[]), 1);
        });
        assert!(!format!("{gauges:?}").is_empty());
        let _ = gauges.registry();
    }

    #[test]
    fn large_indices_collapse_into_one_label() {
        assert_eq!(release_label(7), "7");
        assert_eq!(release_label(8), "8+");
        assert_eq!(release_label(100), "8+");
    }
}
