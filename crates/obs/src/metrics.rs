//! Labeled metrics: counters, gauges and fixed-bucket histograms.
//!
//! [`MetricsRegistry`] stores metrics keyed by `(name, sorted labels)`,
//! renders them as a Prometheus-text-style snapshot and merges with
//! other registries (so per-run snapshots can be aggregated across
//! experiment cells). [`SharedRegistry`] is the cloneable single-thread
//! handle the subsystems hold.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Default histogram bucket upper bounds, in seconds — tuned for the
/// paper's sub-second to few-second service times.
pub const DEFAULT_BUCKETS: [f64; 10] = [0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0];

/// Metric key: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

impl Key {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = format!("{}{{", self.name);
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}=\"{}\"", k, label_escape(v));
        }
        out.push('}');
        out
    }

    /// Renders with one extra label appended (used for histogram `le`).
    fn render_with(&self, extra_key: &str, extra_value: &str) -> String {
        let mut out = format!("{}{{", self.name);
        let mut first = true;
        for (k, v) in &self.labels {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}=\"{}\"", k, label_escape(v));
        }
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", extra_key, label_escape(extra_value));
        out.push('}');
        out
    }
}

/// Escapes a label value per the Prometheus text format.
fn label_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// A fixed-bucket histogram (cumulative on render, like Prometheus).
#[derive(Debug, Clone, PartialEq)]
struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the +Inf bucket.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    fn merge(&mut self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
        } else {
            // Incompatible bucketing: re-observe the other histogram's
            // mass at its bucket bounds (+Inf mass at the last bound).
            for (i, &c) in other.counts.iter().enumerate() {
                let at = other
                    .bounds
                    .get(i)
                    .copied()
                    .or_else(|| other.bounds.last().copied())
                    .unwrap_or(0.0);
                for _ in 0..c {
                    let idx = self
                        .bounds
                        .iter()
                        .position(|&b| at <= b)
                        .unwrap_or(self.bounds.len());
                    self.counts[idx] += 1;
                }
            }
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// The registry of labeled counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, Histogram>,
    /// Bucket bounds configured per metric name.
    buckets: BTreeMap<String, Vec<f64>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a labeled counter by 1.
    pub fn inc_counter(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.add_counter(name, labels, 1);
    }

    /// Adds `delta` to a labeled counter.
    pub fn add_counter(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self.counters.entry(Key::new(name, labels)).or_insert(0) += delta;
    }

    /// Sets a labeled gauge.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert(Key::new(name, labels), value);
    }

    /// Raises a labeled gauge to `value` if it is higher than the
    /// current value (for high-water marks).
    pub fn max_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let entry = self.gauges.entry(Key::new(name, labels)).or_insert(value);
        if value > *entry {
            *entry = value;
        }
    }

    /// Configures the bucket upper bounds used by future observations
    /// of the named histogram (existing series keep their buckets).
    pub fn set_buckets(&mut self, name: &str, bounds: &[f64]) {
        self.buckets.insert(name.to_string(), bounds.to_vec());
    }

    /// Records one observation into a labeled histogram, creating it
    /// with the configured (or [`DEFAULT_BUCKETS`]) bounds on first use.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = Key::new(name, labels);
        let histogram = self.histograms.entry(key).or_insert_with(|| {
            let bounds = self
                .buckets
                .get(name)
                .map(|b| b.as_slice())
                .unwrap_or(&DEFAULT_BUCKETS);
            Histogram::new(bounds)
        });
        histogram.observe(value);
    }

    /// Reads a counter (0 if never written).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&Key::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&Key::new(name, labels)).copied()
    }

    /// Total observation count of a histogram (0 if never written).
    pub fn histogram_count(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.histograms
            .get(&Key::new(name, labels))
            .map(|h| h.count)
            .unwrap_or(0)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one: counters and histograms
    /// add, gauges take the other registry's value (last write wins).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        for (name, bounds) in &other.buckets {
            self.buckets
                .entry(name.clone())
                .or_insert_with(|| bounds.clone());
        }
    }

    /// Renders a Prometheus-text-style snapshot: `# TYPE` comments, one
    /// sample per line, histograms as cumulative `_bucket`/`_sum`/
    /// `_count` series. Deterministic (keys are sorted).
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for (key, value) in &self.counters {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} counter", key.name);
                last_name = &key.name;
            }
            let _ = writeln!(out, "{} {}", key.render(), value);
        }
        last_name = "";
        for (key, value) in &self.gauges {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} gauge", key.name);
                last_name = &key.name;
            }
            let _ = writeln!(out, "{} {}", key.render(), fmt_value(*value));
        }
        last_name = "";
        for (key, histogram) in &self.histograms {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} histogram", key.name);
                last_name = &key.name;
            }
            let bucket_name = format!("{}_bucket", key.name);
            let bucket_key = Key {
                name: bucket_name,
                labels: key.labels.clone(),
            };
            let mut cumulative = 0u64;
            for (i, &bound) in histogram.bounds.iter().enumerate() {
                cumulative += histogram.counts[i];
                let _ = writeln!(
                    out,
                    "{} {}",
                    bucket_key.render_with("le", &fmt_value(bound)),
                    cumulative
                );
            }
            cumulative += histogram.counts[histogram.bounds.len()];
            let _ = writeln!(
                out,
                "{} {}",
                bucket_key.render_with("le", "+Inf"),
                cumulative
            );
            let sum_key = Key {
                name: format!("{}_sum", key.name),
                labels: key.labels.clone(),
            };
            let _ = writeln!(out, "{} {}", sum_key.render(), fmt_value(histogram.sum));
            let count_key = Key {
                name: format!("{}_count", key.name),
                labels: key.labels.clone(),
            };
            let _ = writeln!(out, "{} {}", count_key.render(), histogram.count);
        }
        out
    }
}

/// Formats a float sample value (Prometheus accepts `NaN`/`+Inf`).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// A cloneable single-thread handle to one shared [`MetricsRegistry`].
///
/// Subsystems that only hold `&self` (e.g. the management subsystem's
/// assessment path) can still record through the interior `RefCell`.
#[derive(Debug, Clone, Default)]
pub struct SharedRegistry {
    inner: Rc<RefCell<MetricsRegistry>>,
}

impl SharedRegistry {
    /// A new handle to an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a labeled counter by 1.
    pub fn inc_counter(&self, name: &str, labels: &[(&str, &str)]) {
        self.inner.borrow_mut().inc_counter(name, labels);
    }

    /// Adds `delta` to a labeled counter.
    pub fn add_counter(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.inner.borrow_mut().add_counter(name, labels, delta);
    }

    /// Sets a labeled gauge.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.inner.borrow_mut().set_gauge(name, labels, value);
    }

    /// Raises a labeled gauge to `value` if higher.
    pub fn max_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.inner.borrow_mut().max_gauge(name, labels, value);
    }

    /// Configures histogram bucket bounds for a metric name.
    pub fn set_buckets(&self, name: &str, bounds: &[f64]) {
        self.inner.borrow_mut().set_buckets(name, bounds);
    }

    /// Records one histogram observation.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.inner.borrow_mut().observe(name, labels, value);
    }

    /// Runs `f` with mutable access to the underlying registry.
    pub fn with<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }

    /// Renders the Prometheus-text snapshot.
    pub fn render_snapshot(&self) -> String {
        self.inner.borrow().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter("wsu_demands_total", &[("mode", "parallel")]);
        reg.add_counter("wsu_demands_total", &[("mode", "parallel")], 2);
        assert_eq!(reg.counter("wsu_demands_total", &[("mode", "parallel")]), 3);
        let snap = reg.snapshot();
        assert!(snap.contains("# TYPE wsu_demands_total counter"), "{snap}");
        assert!(
            snap.contains("wsu_demands_total{mode=\"parallel\"} 3"),
            "{snap}"
        );
    }

    #[test]
    fn label_order_is_canonical() {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter("m", &[("b", "2"), ("a", "1")]);
        reg.inc_counter("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(reg.counter("m", &[("a", "1"), ("b", "2")]), 2);
        assert!(reg.snapshot().contains("m{a=\"1\",b=\"2\"} 2"));
    }

    #[test]
    fn gauges_set_and_max() {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("g", &[], 5.0);
        reg.max_gauge("g", &[], 3.0);
        assert_eq!(reg.gauge("g", &[]), Some(5.0));
        reg.max_gauge("g", &[], 7.5);
        assert_eq!(reg.gauge("g", &[]), Some(7.5));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut reg = MetricsRegistry::new();
        reg.set_buckets("h", &[1.0, 2.0]);
        reg.observe("h", &[], 0.5);
        reg.observe("h", &[], 1.5);
        reg.observe("h", &[], 9.0);
        let snap = reg.snapshot();
        assert!(snap.contains("h_bucket{le=\"1\"} 1"), "{snap}");
        assert!(snap.contains("h_bucket{le=\"2\"} 2"), "{snap}");
        assert!(snap.contains("h_bucket{le=\"+Inf\"} 3"), "{snap}");
        assert!(snap.contains("h_sum 11"), "{snap}");
        assert!(snap.contains("h_count 3"), "{snap}");
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc_counter("c", &[]);
        b.add_counter("c", &[], 4);
        a.observe("h", &[], 0.1);
        b.observe("h", &[], 0.2);
        b.set_gauge("g", &[], 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c", &[]), 5);
        assert_eq!(a.histogram_count("h", &[]), 2);
        assert_eq!(a.gauge("g", &[]), Some(2.0));
    }

    #[test]
    fn shared_registry_clones_share_state() {
        let shared = SharedRegistry::new();
        let other = shared.clone();
        shared.inc_counter("c", &[]);
        other.inc_counter("c", &[]);
        assert_eq!(shared.with(|r| r.counter("c", &[])), 2);
        assert!(shared.render_snapshot().contains("c 2"));
    }
}
