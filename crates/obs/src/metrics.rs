//! Labeled metrics: counters, gauges, fixed-bucket histograms and
//! quantile sketches.
//!
//! [`MetricsRegistry`] stores metrics keyed by `(name, sorted labels)`,
//! renders them as a Prometheus-text-style snapshot and merges with
//! other registries (so per-run snapshots can be aggregated across
//! experiment cells). [`SharedRegistry`] is the cloneable single-thread
//! handle the subsystems hold.
//!
//! Hot paths resolve a `(name, labels)` pair to an integer series id
//! once ([`MetricsRegistry::counter_id`] and friends) and then update by
//! array index — no label-vector construction, no map lookup, no
//! allocation per observation. The `String`-keyed API remains as the
//! slow path and both roads meet in the same storage, so snapshots are
//! byte-identical however a series was written. Each series' label
//! prefix is rendered once at creation, so repeated snapshots do not
//! re-format unchanged label sets.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::quantile::{QuantileSketch, SUMMARY_QUANTILES};

/// Default histogram bucket upper bounds, in seconds — tuned for the
/// paper's sub-second to few-second service times.
pub const DEFAULT_BUCKETS: [f64; 10] = [0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0];

/// Metric key: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

impl Key {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = format!("{}{{", self.name);
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}=\"{}\"", k, label_escape(v));
        }
        out.push('}');
        out
    }

    /// Renders with one extra label appended (used for histogram `le`).
    fn render_with(&self, extra_key: &str, extra_value: &str) -> String {
        let mut out = format!("{}{{", self.name);
        let mut first = true;
        for (k, v) in &self.labels {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}=\"{}\"", k, label_escape(v));
        }
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", extra_key, label_escape(extra_value));
        out.push('}');
        out
    }
}

/// Escapes a label value per the Prometheus text format.
fn label_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// A fixed-bucket histogram (cumulative on render, like Prometheus).
#[derive(Debug, Clone, PartialEq)]
struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the +Inf bucket.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    fn merge(&mut self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
        } else {
            // Incompatible bucketing: re-observe the other histogram's
            // mass at its bucket bounds (+Inf mass at the last bound).
            for (i, &c) in other.counts.iter().enumerate() {
                let at = other
                    .bounds
                    .get(i)
                    .copied()
                    .or_else(|| other.bounds.last().copied())
                    .unwrap_or(0.0);
                for _ in 0..c {
                    let idx = self
                        .bounds
                        .iter()
                        .position(|&b| at <= b)
                        .unwrap_or(self.bounds.len());
                    self.counts[idx] += 1;
                }
            }
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Pre-rendered sample-line prefixes for one histogram series: computed
/// once when the series is created, reused by every snapshot.
#[derive(Debug, Clone, PartialEq)]
struct HistogramRender {
    /// `name_bucket{labels,le="bound"}`, one per finite bound.
    bucket_lines: Vec<String>,
    /// `name_bucket{labels,le="+Inf"}`.
    inf_line: String,
    /// `name_sum{labels}`.
    sum_line: String,
    /// `name_count{labels}`.
    count_line: String,
}

impl HistogramRender {
    fn new(key: &Key, bounds: &[f64]) -> Self {
        let bucket_key = Key {
            name: format!("{}_bucket", key.name),
            labels: key.labels.clone(),
        };
        Self {
            bucket_lines: bounds
                .iter()
                .map(|&b| bucket_key.render_with("le", &fmt_value(b)))
                .collect(),
            inf_line: bucket_key.render_with("le", "+Inf"),
            sum_line: Key {
                name: format!("{}_sum", key.name),
                labels: key.labels.clone(),
            }
            .render(),
            count_line: Key {
                name: format!("{}_count", key.name),
                labels: key.labels.clone(),
            }
            .render(),
        }
    }
}

/// Pre-rendered sample-line prefixes for one quantile-sketch series,
/// rendered as a Prometheus summary: one `quantile="…"` line per entry
/// in [`SUMMARY_QUANTILES`] plus `_sum` and `_count`.
#[derive(Debug, Clone, PartialEq)]
struct SketchRender {
    /// `name{labels,quantile="q"}`, one per summary quantile.
    quantile_lines: Vec<String>,
    /// `name_sum{labels}`.
    sum_line: String,
    /// `name_count{labels}`.
    count_line: String,
}

impl SketchRender {
    fn new(key: &Key) -> Self {
        Self {
            quantile_lines: SUMMARY_QUANTILES
                .iter()
                .map(|&(_, label)| key.render_with("quantile", label))
                .collect(),
            sum_line: Key {
                name: format!("{}_sum", key.name),
                labels: key.labels.clone(),
            }
            .render(),
            count_line: Key {
                name: format!("{}_count", key.name),
                labels: key.labels.clone(),
            }
            .render(),
        }
    }
}

/// Pre-resolved handle to one counter series — an index, so the hot
/// path is `values[id] += delta`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Pre-resolved handle to one gauge series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Pre-resolved handle to one histogram series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Pre-resolved handle to one quantile-sketch series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchId(usize);

/// The registry of labeled counters, gauges and histograms.
///
/// Series live in slot vectors; the sorted key maps only resolve a
/// `(name, labels)` pair to its slot (at creation and in snapshots), so
/// id-based updates never touch them.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<Key, usize>,
    counter_values: Vec<u64>,
    counter_rendered: Vec<String>,
    gauges: BTreeMap<Key, usize>,
    gauge_values: Vec<f64>,
    gauge_rendered: Vec<String>,
    histograms: BTreeMap<Key, usize>,
    histogram_values: Vec<Histogram>,
    histogram_rendered: Vec<HistogramRender>,
    sketches: BTreeMap<Key, usize>,
    sketch_values: Vec<QuantileSketch>,
    sketch_rendered: Vec<SketchRender>,
    /// Bucket bounds configured per metric name.
    buckets: BTreeMap<String, Vec<f64>>,
}

impl PartialEq for MetricsRegistry {
    /// Logical equality: same series with the same values, regardless of
    /// the slot order the two registries happened to create them in.
    fn eq(&self, other: &Self) -> bool {
        self.counters.len() == other.counters.len()
            && self.gauges.len() == other.gauges.len()
            && self.histograms.len() == other.histograms.len()
            && self.sketches.len() == other.sketches.len()
            && self.buckets == other.buckets
            && self
                .counters
                .iter()
                .zip(&other.counters)
                .all(|((ka, &sa), (kb, &sb))| {
                    ka == kb && self.counter_values[sa] == other.counter_values[sb]
                })
            && self
                .gauges
                .iter()
                .zip(&other.gauges)
                .all(|((ka, &sa), (kb, &sb))| {
                    ka == kb && self.gauge_values[sa] == other.gauge_values[sb]
                })
            && self
                .histograms
                .iter()
                .zip(&other.histograms)
                .all(|((ka, &sa), (kb, &sb))| {
                    ka == kb && self.histogram_values[sa] == other.histogram_values[sb]
                })
            && self
                .sketches
                .iter()
                .zip(&other.sketches)
                .all(|((ka, &sa), (kb, &sb))| {
                    ka == kb && self.sketch_values[sa] == other.sketch_values[sb]
                })
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn counter_slot(&mut self, key: Key) -> usize {
        if let Some(&slot) = self.counters.get(&key) {
            return slot;
        }
        let slot = self.counter_values.len();
        self.counter_values.push(0);
        self.counter_rendered.push(key.render());
        self.counters.insert(key, slot);
        slot
    }

    fn gauge_slot(&mut self, key: Key) -> usize {
        if let Some(&slot) = self.gauges.get(&key) {
            return slot;
        }
        let slot = self.gauge_values.len();
        self.gauge_values.push(0.0);
        self.gauge_rendered.push(key.render());
        self.gauges.insert(key, slot);
        slot
    }

    /// Creates the histogram slot with explicit bounds (used by merge);
    /// `None` means "the bounds configured for this name, or default".
    fn histogram_slot(&mut self, key: Key, bounds: Option<&[f64]>) -> usize {
        if let Some(&slot) = self.histograms.get(&key) {
            return slot;
        }
        let bounds: Vec<f64> = match bounds {
            Some(b) => b.to_vec(),
            None => self
                .buckets
                .get(&key.name)
                .map(|b| b.as_slice())
                .unwrap_or(&DEFAULT_BUCKETS)
                .to_vec(),
        };
        let slot = self.histogram_values.len();
        self.histogram_rendered
            .push(HistogramRender::new(&key, &bounds));
        self.histogram_values.push(Histogram::new(&bounds));
        self.histograms.insert(key, slot);
        slot
    }

    fn sketch_slot(&mut self, key: Key) -> usize {
        if let Some(&slot) = self.sketches.get(&key) {
            return slot;
        }
        let slot = self.sketch_values.len();
        self.sketch_rendered.push(SketchRender::new(&key));
        self.sketch_values.push(QuantileSketch::default());
        self.sketches.insert(key, slot);
        slot
    }

    /// Resolves (creating if needed) the counter series and returns its
    /// id. A freshly created series starts at 0 and *will* appear in
    /// snapshots, so resolve ids at first write (or write right after).
    pub fn counter_id(&mut self, name: &str, labels: &[(&str, &str)]) -> CounterId {
        CounterId(self.counter_slot(Key::new(name, labels)))
    }

    /// Resolves (creating if needed) the gauge series id.
    pub fn gauge_id(&mut self, name: &str, labels: &[(&str, &str)]) -> GaugeId {
        GaugeId(self.gauge_slot(Key::new(name, labels)))
    }

    /// Resolves (creating if needed) the histogram series id, with the
    /// bounds configured for `name` (or [`DEFAULT_BUCKETS`]).
    pub fn histogram_id(&mut self, name: &str, labels: &[(&str, &str)]) -> HistogramId {
        HistogramId(self.histogram_slot(Key::new(name, labels), None))
    }

    /// Resolves (creating if needed) the quantile-sketch series id.
    pub fn sketch_id(&mut self, name: &str, labels: &[(&str, &str)]) -> SketchId {
        SketchId(self.sketch_slot(Key::new(name, labels)))
    }

    /// Increments a pre-resolved counter by 1 (array index, no lookup).
    pub fn inc_counter_id(&mut self, id: CounterId) {
        self.counter_values[id.0] += 1;
    }

    /// Adds `delta` to a pre-resolved counter.
    pub fn add_counter_id(&mut self, id: CounterId, delta: u64) {
        self.counter_values[id.0] += delta;
    }

    /// Sets a pre-resolved gauge.
    pub fn set_gauge_id(&mut self, id: GaugeId, value: f64) {
        self.gauge_values[id.0] = value;
    }

    /// Records one observation into a pre-resolved histogram.
    pub fn observe_id(&mut self, id: HistogramId, value: f64) {
        self.histogram_values[id.0].observe(value);
    }

    /// Records one observation into a pre-resolved quantile sketch
    /// (array index plus one logarithm — no allocation).
    pub fn observe_sketch_id(&mut self, id: SketchId, value: f64) {
        self.sketch_values[id.0].observe(value);
    }

    /// Increments a labeled counter by 1.
    pub fn inc_counter(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.add_counter(name, labels, 1);
    }

    /// Adds `delta` to a labeled counter.
    pub fn add_counter(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let slot = self.counter_slot(Key::new(name, labels));
        self.counter_values[slot] += delta;
    }

    /// Sets a labeled gauge.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let slot = self.gauge_slot(Key::new(name, labels));
        self.gauge_values[slot] = value;
    }

    /// Raises a labeled gauge to `value` if it is higher than the
    /// current value (for high-water marks).
    pub fn max_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = Key::new(name, labels);
        match self.gauges.get(&key) {
            Some(&slot) => {
                if value > self.gauge_values[slot] {
                    self.gauge_values[slot] = value;
                }
            }
            None => {
                let slot = self.gauge_slot(key);
                self.gauge_values[slot] = value;
            }
        }
    }

    /// Configures the bucket upper bounds used by future observations
    /// of the named histogram (existing series keep their buckets).
    pub fn set_buckets(&mut self, name: &str, bounds: &[f64]) {
        self.buckets.insert(name.to_string(), bounds.to_vec());
    }

    /// Records one observation into a labeled histogram, creating it
    /// with the configured (or [`DEFAULT_BUCKETS`]) bounds on first use.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let slot = self.histogram_slot(Key::new(name, labels), None);
        self.histogram_values[slot].observe(value);
    }

    /// Records one observation into a labeled quantile sketch,
    /// creating it with the default configuration on first use.
    pub fn observe_sketch(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let slot = self.sketch_slot(Key::new(name, labels));
        self.sketch_values[slot].observe(value);
    }

    /// Reads a counter (0 if never written).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&Key::new(name, labels))
            .map(|&slot| self.counter_values[slot])
            .unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges
            .get(&Key::new(name, labels))
            .map(|&slot| self.gauge_values[slot])
    }

    /// Total observation count of a histogram (0 if never written).
    pub fn histogram_count(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.histograms
            .get(&Key::new(name, labels))
            .map(|&slot| self.histogram_values[slot].count)
            .unwrap_or(0)
    }

    /// Reads a quantile sketch (`None` if never written).
    pub fn sketch(&self, name: &str, labels: &[(&str, &str)]) -> Option<&QuantileSketch> {
        self.sketches
            .get(&Key::new(name, labels))
            .map(|&slot| &self.sketch_values[slot])
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.sketches.is_empty()
    }

    /// Folds another registry into this one: counters, histograms and
    /// quantile sketches add, gauges take the other registry's value
    /// (last write wins).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &theirs) in &other.counters {
            let slot = self.counter_slot(k.clone());
            self.counter_values[slot] += other.counter_values[theirs];
        }
        for (k, &theirs) in &other.gauges {
            let slot = self.gauge_slot(k.clone());
            self.gauge_values[slot] = other.gauge_values[theirs];
        }
        for (k, &theirs) in &other.histograms {
            let h = &other.histogram_values[theirs];
            match self.histograms.get(k) {
                Some(&slot) => self.histogram_values[slot].merge(h),
                None => {
                    let slot = self.histogram_slot(k.clone(), Some(&h.bounds));
                    self.histogram_values[slot] = h.clone();
                }
            }
        }
        for (k, &theirs) in &other.sketches {
            let s = &other.sketch_values[theirs];
            match self.sketches.get(k) {
                Some(&slot) => self.sketch_values[slot].merge(s),
                None => {
                    let slot = self.sketch_slot(k.clone());
                    self.sketch_values[slot] = s.clone();
                }
            }
        }
        for (name, bounds) in &other.buckets {
            self.buckets
                .entry(name.clone())
                .or_insert_with(|| bounds.clone());
        }
    }

    /// A size estimate for [`snapshot`](Self::snapshot), so the output
    /// string is allocated once.
    fn snapshot_capacity(&self) -> usize {
        let mut cap = 0;
        for rendered in self.counter_rendered.iter().chain(&self.gauge_rendered) {
            // "# TYPE name kind\n" upper bound plus "rendered value\n".
            cap += rendered.len() + 48;
        }
        for r in &self.histogram_rendered {
            for line in &r.bucket_lines {
                cap += line.len() + 24;
            }
            cap += r.inf_line.len() + r.sum_line.len() + r.count_line.len() + 96;
        }
        for r in &self.sketch_rendered {
            for line in &r.quantile_lines {
                cap += line.len() + 24;
            }
            cap += r.sum_line.len() + r.count_line.len() + 96;
        }
        cap
    }

    /// Renders a Prometheus-text-style snapshot: `# TYPE` comments, one
    /// sample per line, histograms as cumulative `_bucket`/`_sum`/
    /// `_count` series. Deterministic (keys are sorted).
    pub fn snapshot(&self) -> String {
        let mut out = String::with_capacity(self.snapshot_capacity());
        let mut last_name = "";
        for (key, &slot) in &self.counters {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} counter", key.name);
                last_name = &key.name;
            }
            let _ = writeln!(
                out,
                "{} {}",
                self.counter_rendered[slot], self.counter_values[slot]
            );
        }
        last_name = "";
        for (key, &slot) in &self.gauges {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} gauge", key.name);
                last_name = &key.name;
            }
            let _ = writeln!(
                out,
                "{} {}",
                self.gauge_rendered[slot],
                fmt_value(self.gauge_values[slot])
            );
        }
        last_name = "";
        for (key, &slot) in &self.histograms {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} histogram", key.name);
                last_name = &key.name;
            }
            let histogram = &self.histogram_values[slot];
            let rendered = &self.histogram_rendered[slot];
            let mut cumulative = 0u64;
            for (i, line) in rendered.bucket_lines.iter().enumerate() {
                cumulative += histogram.counts[i];
                let _ = writeln!(out, "{} {}", line, cumulative);
            }
            cumulative += histogram.counts[histogram.bounds.len()];
            let _ = writeln!(out, "{} {}", rendered.inf_line, cumulative);
            let _ = writeln!(out, "{} {}", rendered.sum_line, fmt_value(histogram.sum));
            let _ = writeln!(out, "{} {}", rendered.count_line, histogram.count);
        }
        last_name = "";
        for (key, &slot) in &self.sketches {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} summary", key.name);
                last_name = &key.name;
            }
            let sketch = &self.sketch_values[slot];
            let rendered = &self.sketch_rendered[slot];
            for (&(q, _), line) in SUMMARY_QUANTILES.iter().zip(&rendered.quantile_lines) {
                let value = sketch.quantile(q).unwrap_or(f64::NAN);
                let _ = writeln!(out, "{} {}", line, fmt_value(value));
            }
            let _ = writeln!(out, "{} {}", rendered.sum_line, fmt_value(sketch.sum()));
            let _ = writeln!(out, "{} {}", rendered.count_line, sketch.count());
        }
        out
    }
}

/// Formats a float sample value (Prometheus accepts `NaN`/`+Inf`).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// A cloneable single-thread handle to one shared [`MetricsRegistry`].
///
/// Subsystems that only hold `&self` (e.g. the management subsystem's
/// assessment path) can still record through the interior `RefCell`.
#[derive(Debug, Clone, Default)]
pub struct SharedRegistry {
    inner: Rc<RefCell<MetricsRegistry>>,
}

impl SharedRegistry {
    /// A new handle to an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a labeled counter by 1.
    pub fn inc_counter(&self, name: &str, labels: &[(&str, &str)]) {
        self.inner.borrow_mut().inc_counter(name, labels);
    }

    /// Adds `delta` to a labeled counter.
    pub fn add_counter(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.inner.borrow_mut().add_counter(name, labels, delta);
    }

    /// Sets a labeled gauge.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.inner.borrow_mut().set_gauge(name, labels, value);
    }

    /// Raises a labeled gauge to `value` if higher.
    pub fn max_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.inner.borrow_mut().max_gauge(name, labels, value);
    }

    /// Configures histogram bucket bounds for a metric name.
    pub fn set_buckets(&self, name: &str, bounds: &[f64]) {
        self.inner.borrow_mut().set_buckets(name, bounds);
    }

    /// Records one histogram observation.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.inner.borrow_mut().observe(name, labels, value);
    }

    /// Records one quantile-sketch observation.
    pub fn observe_sketch(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.inner.borrow_mut().observe_sketch(name, labels, value);
    }

    /// Resolves (creating if needed) a counter series id.
    pub fn counter_id(&self, name: &str, labels: &[(&str, &str)]) -> CounterId {
        self.inner.borrow_mut().counter_id(name, labels)
    }

    /// Resolves (creating if needed) a gauge series id.
    pub fn gauge_id(&self, name: &str, labels: &[(&str, &str)]) -> GaugeId {
        self.inner.borrow_mut().gauge_id(name, labels)
    }

    /// Resolves (creating if needed) a histogram series id.
    pub fn histogram_id(&self, name: &str, labels: &[(&str, &str)]) -> HistogramId {
        self.inner.borrow_mut().histogram_id(name, labels)
    }

    /// Increments a pre-resolved counter by 1.
    pub fn inc_counter_id(&self, id: CounterId) {
        self.inner.borrow_mut().inc_counter_id(id);
    }

    /// Adds `delta` to a pre-resolved counter.
    pub fn add_counter_id(&self, id: CounterId, delta: u64) {
        self.inner.borrow_mut().add_counter_id(id, delta);
    }

    /// Sets a pre-resolved gauge.
    pub fn set_gauge_id(&self, id: GaugeId, value: f64) {
        self.inner.borrow_mut().set_gauge_id(id, value);
    }

    /// Records one observation into a pre-resolved histogram.
    pub fn observe_id(&self, id: HistogramId, value: f64) {
        self.inner.borrow_mut().observe_id(id, value);
    }

    /// Resolves (creating if needed) a quantile-sketch series id.
    pub fn sketch_id(&self, name: &str, labels: &[(&str, &str)]) -> SketchId {
        self.inner.borrow_mut().sketch_id(name, labels)
    }

    /// Records one observation into a pre-resolved quantile sketch.
    pub fn observe_sketch_id(&self, id: SketchId, value: f64) {
        self.inner.borrow_mut().observe_sketch_id(id, value);
    }

    /// Runs `f` with mutable access to the underlying registry.
    pub fn with<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }

    /// Renders the Prometheus-text snapshot.
    pub fn render_snapshot(&self) -> String {
        self.inner.borrow().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter("wsu_demands_total", &[("mode", "parallel")]);
        reg.add_counter("wsu_demands_total", &[("mode", "parallel")], 2);
        assert_eq!(reg.counter("wsu_demands_total", &[("mode", "parallel")]), 3);
        let snap = reg.snapshot();
        assert!(snap.contains("# TYPE wsu_demands_total counter"), "{snap}");
        assert!(
            snap.contains("wsu_demands_total{mode=\"parallel\"} 3"),
            "{snap}"
        );
    }

    #[test]
    fn label_order_is_canonical() {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter("m", &[("b", "2"), ("a", "1")]);
        reg.inc_counter("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(reg.counter("m", &[("a", "1"), ("b", "2")]), 2);
        assert!(reg.snapshot().contains("m{a=\"1\",b=\"2\"} 2"));
    }

    #[test]
    fn gauges_set_and_max() {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("g", &[], 5.0);
        reg.max_gauge("g", &[], 3.0);
        assert_eq!(reg.gauge("g", &[]), Some(5.0));
        reg.max_gauge("g", &[], 7.5);
        assert_eq!(reg.gauge("g", &[]), Some(7.5));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut reg = MetricsRegistry::new();
        reg.set_buckets("h", &[1.0, 2.0]);
        reg.observe("h", &[], 0.5);
        reg.observe("h", &[], 1.5);
        reg.observe("h", &[], 9.0);
        let snap = reg.snapshot();
        assert!(snap.contains("h_bucket{le=\"1\"} 1"), "{snap}");
        assert!(snap.contains("h_bucket{le=\"2\"} 2"), "{snap}");
        assert!(snap.contains("h_bucket{le=\"+Inf\"} 3"), "{snap}");
        assert!(snap.contains("h_sum 11"), "{snap}");
        assert!(snap.contains("h_count 3"), "{snap}");
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc_counter("c", &[]);
        b.add_counter("c", &[], 4);
        a.observe("h", &[], 0.1);
        b.observe("h", &[], 0.2);
        b.set_gauge("g", &[], 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c", &[]), 5);
        assert_eq!(a.histogram_count("h", &[]), 2);
        assert_eq!(a.gauge("g", &[]), Some(2.0));
    }

    #[test]
    fn shared_registry_clones_share_state() {
        let shared = SharedRegistry::new();
        let other = shared.clone();
        shared.inc_counter("c", &[]);
        other.inc_counter("c", &[]);
        assert_eq!(shared.with(|r| r.counter("c", &[])), 2);
        assert!(shared.render_snapshot().contains("c 2"));
    }

    #[test]
    fn id_and_string_paths_share_series() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter_id("c", &[("x", "1")]);
        reg.inc_counter_id(c);
        reg.add_counter_id(c, 2);
        reg.inc_counter("c", &[("x", "1")]);
        assert_eq!(reg.counter("c", &[("x", "1")]), 4);
        // Resolving again returns the same slot.
        assert_eq!(reg.counter_id("c", &[("x", "1")]), c);

        let g = reg.gauge_id("g", &[]);
        reg.set_gauge_id(g, 1.5);
        assert_eq!(reg.gauge("g", &[]), Some(1.5));
        reg.set_gauge("g", &[], 2.5);
        assert_eq!(reg.gauge("g", &[]), Some(2.5));

        reg.set_buckets("h", &[1.0]);
        let h = reg.histogram_id("h", &[]);
        reg.observe_id(h, 0.5);
        reg.observe("h", &[], 3.0);
        assert_eq!(reg.histogram_count("h", &[]), 2);
        let snap = reg.snapshot();
        assert!(snap.contains("h_bucket{le=\"1\"} 1"), "{snap}");
        assert!(snap.contains("h_bucket{le=\"+Inf\"} 2"), "{snap}");
    }

    #[test]
    fn snapshots_agree_between_id_and_string_writers() {
        let mut via_ids = MetricsRegistry::new();
        let mut via_strings = MetricsRegistry::new();
        let c = via_ids.counter_id("wsu_x_total", &[("k", "v")]);
        via_ids.add_counter_id(c, 7);
        via_strings.add_counter("wsu_x_total", &[("k", "v")], 7);
        let h = via_ids.histogram_id("lat", &[("k", "v")]);
        via_ids.observe_id(h, 0.3);
        via_strings.observe("lat", &[("k", "v")], 0.3);
        assert_eq!(via_ids.snapshot(), via_strings.snapshot());
        assert_eq!(via_ids, via_strings);
    }

    #[test]
    fn equality_ignores_slot_creation_order() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc_counter("one", &[]);
        a.inc_counter("two", &[]);
        b.inc_counter("two", &[]);
        b.inc_counter("one", &[]);
        assert_eq!(a, b);
        b.inc_counter("two", &[]);
        assert_ne!(a, b);
    }

    #[test]
    fn sketches_render_as_summaries() {
        let mut reg = MetricsRegistry::new();
        for i in 1..=100 {
            reg.observe_sketch("rt", &[("release", "old")], i as f64 * 0.01);
        }
        let snap = reg.snapshot();
        assert!(snap.contains("# TYPE rt summary"), "{snap}");
        assert!(
            snap.contains("rt{release=\"old\",quantile=\"0.5\"}"),
            "{snap}"
        );
        assert!(
            snap.contains("rt{release=\"old\",quantile=\"0.999\"}"),
            "{snap}"
        );
        assert!(snap.contains("rt_count{release=\"old\"} 100"), "{snap}");
        let sketch = reg.sketch("rt", &[("release", "old")]).unwrap();
        assert!((sketch.p50() - 0.5).abs() / 0.5 <= sketch.alpha() * 1.0001);
    }

    #[test]
    fn sketch_merge_adds_mass_and_keeps_snapshots_identical() {
        let mut whole = MetricsRegistry::new();
        let mut left = MetricsRegistry::new();
        let mut right = MetricsRegistry::new();
        for i in 0..60 {
            let v = 0.05 + i as f64 * 0.003;
            whole.observe_sketch("rt", &[], v);
            if i < 30 {
                left.observe_sketch("rt", &[], v);
            } else {
                right.observe_sketch("rt", &[], v);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(left.snapshot(), whole.snapshot());
    }

    #[test]
    fn sketch_id_and_string_paths_share_series() {
        let mut reg = MetricsRegistry::new();
        let id = reg.sketch_id("s", &[("k", "v")]);
        reg.observe_sketch_id(id, 0.2);
        reg.observe_sketch("s", &[("k", "v")], 0.4);
        assert_eq!(reg.sketch("s", &[("k", "v")]).unwrap().count(), 2);
        assert_eq!(reg.sketch_id("s", &[("k", "v")]), id);
    }

    #[test]
    fn empty_sketch_renders_nan_quantiles() {
        let mut reg = MetricsRegistry::new();
        reg.sketch_id("s", &[]);
        let snap = reg.snapshot();
        assert!(snap.contains("s{quantile=\"0.5\"} NaN"), "{snap}");
        assert!(snap.contains("s_sum 0"), "{snap}");
        assert!(snap.contains("s_count 0"), "{snap}");
    }

    #[test]
    fn shared_registry_id_paths_work() {
        let shared = SharedRegistry::new();
        let c = shared.counter_id("c", &[]);
        shared.inc_counter_id(c);
        shared.add_counter_id(c, 1);
        let g = shared.gauge_id("g", &[]);
        shared.set_gauge_id(g, 4.0);
        let h = shared.histogram_id("h", &[]);
        shared.observe_id(h, 0.1);
        shared.with(|r| {
            assert_eq!(r.counter("c", &[]), 2);
            assert_eq!(r.gauge("g", &[]), Some(4.0));
            assert_eq!(r.histogram_count("h", &[]), 1);
        });
    }
}
