//! Log-scale-bucket quantile sketches with exact relative-error bounds.
//!
//! [`QuantileSketch`] is an HDR/DDSketch-style histogram over
//! geometrically spaced buckets: bucket `i` covers
//! `(min_value·γ^(i-1), min_value·γ^i]` with `γ = (1+α)/(1−α)`, so the
//! mid-bucket estimate `2·lo·γ/(1+γ)` is within relative error `α` of
//! **any** value in the bucket. Because a rank query walks cumulative
//! counts in value order, the reported quantile lands in the bucket
//! that contains the exact order statistic — the `α` bound is a
//! guarantee, not a heuristic.
//!
//! The bucket array is sized once at construction and every
//! [`observe`](QuantileSketch::observe) is an array increment, so the
//! sketch is allocation-free on the per-demand hot path and two
//! sketches with the same configuration [`merge`](QuantileSketch::merge)
//! by adding counts — exactly what deterministic shard folding
//! (`MetricsRegistry::merge` across `--jobs N` replication shards)
//! needs.

/// The quantiles rendered by the registry's summary output, with their
/// Prometheus `quantile` label values.
pub const SUMMARY_QUANTILES: [(f64, &str); 4] =
    [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

/// Default relative-error bound (1%).
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Default smallest distinguishable value, in seconds (1 µs). Values at
/// or below this collapse into the underflow bucket.
pub const DEFAULT_MIN_VALUE: f64 = 1e-6;

/// Default largest distinguishable value, in seconds. Values above this
/// clamp into the top bucket.
pub const DEFAULT_MAX_VALUE: f64 = 1e4;

/// A mergeable log-bucket quantile sketch with relative error ≤ `alpha`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Configured relative-error bound.
    alpha: f64,
    /// Bucket growth factor `(1+α)/(1−α)`.
    gamma: f64,
    /// `ln(gamma)`, precomputed for the observe path.
    ln_gamma: f64,
    /// Lower edge of bucket 1; values ≤ this land in the underflow
    /// bucket and are reported as `min_seen`.
    min_value: f64,
    /// Counts for buckets `1..=counts.len()`.
    counts: Vec<u64>,
    /// Observations at or below `min_value`.
    underflow: u64,
    count: u64,
    sum: f64,
    min_seen: f64,
    max_seen: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_ALPHA)
    }
}

impl QuantileSketch {
    /// A sketch with relative error `alpha` over the default value
    /// range [`DEFAULT_MIN_VALUE`, `DEFAULT_MAX_VALUE`].
    pub fn new(alpha: f64) -> Self {
        Self::with_range(alpha, DEFAULT_MIN_VALUE, DEFAULT_MAX_VALUE)
    }

    /// A sketch with relative error `alpha` distinguishing values in
    /// `(min_value, max_value]`. Values outside clamp to the edge
    /// buckets (their reported estimates stay within `[min, max]` of
    /// the data actually seen).
    pub fn with_range(alpha: f64, min_value: f64, max_value: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0, 1), got {alpha}"
        );
        assert!(
            min_value > 0.0 && max_value > min_value,
            "need 0 < min_value < max_value"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        let ln_gamma = gamma.ln();
        let buckets = ((max_value / min_value).ln() / ln_gamma).ceil() as usize + 1;
        Self {
            alpha,
            gamma,
            ln_gamma,
            min_value,
            counts: vec![0; buckets],
            underflow: 0,
            count: 0,
            sum: 0.0,
            min_seen: f64::INFINITY,
            max_seen: f64::NEG_INFINITY,
        }
    }

    /// The configured relative-error bound.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observed value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min_seen)
    }

    /// Largest observed value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max_seen)
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Records one observation. Allocation-free: one logarithm and one
    /// array increment.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        if value < self.min_seen {
            self.min_seen = value;
        }
        if value > self.max_seen {
            self.max_seen = value;
        }
        if value <= self.min_value {
            self.underflow += 1;
            return;
        }
        let idx = ((value / self.min_value).ln() / self.ln_gamma).ceil() as usize;
        let idx = idx.saturating_sub(1).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// The estimate reported for bucket `idx` (0-based): the point that
    /// minimises worst-case relative error over the bucket's range,
    /// clamped to the observed `[min, max]`.
    fn bucket_estimate(&self, idx: usize) -> f64 {
        let lo = self.min_value * self.gamma.powi(idx as i32);
        let est = 2.0 * lo * self.gamma / (1.0 + self.gamma);
        est.clamp(self.min_seen, self.max_seen)
    }

    /// The `q`-quantile estimate (`q` in `[0, 1]`), or `None` when the
    /// sketch is empty. Uses the nearest-rank definition
    /// `rank = max(1, ⌈q·n⌉)`; the estimate is within relative error
    /// [`alpha`](Self::alpha) of the exact order statistic (exact for
    /// values at or below `min_value`, where `min_seen` is returned).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = self.underflow;
        if cumulative >= rank {
            return Some(self.min_seen);
        }
        for (idx, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Some(self.bucket_estimate(idx));
            }
        }
        Some(self.max_seen)
    }

    /// The median estimate (`NaN` when empty).
    pub fn p50(&self) -> f64 {
        self.quantile(0.5).unwrap_or(f64::NAN)
    }

    /// The 90th-percentile estimate (`NaN` when empty).
    pub fn p90(&self) -> f64 {
        self.quantile(0.9).unwrap_or(f64::NAN)
    }

    /// The 99th-percentile estimate (`NaN` when empty).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99).unwrap_or(f64::NAN)
    }

    /// The 99.9th-percentile estimate (`NaN` when empty).
    pub fn p999(&self) -> f64 {
        self.quantile(0.999).unwrap_or(f64::NAN)
    }

    /// Folds another sketch into this one. Same configuration (the only
    /// case deterministic shard folding produces): bucket counts add,
    /// so merge order cannot change any rank query. Different
    /// configuration: the other sketch's mass is re-observed at its
    /// bucket estimates, like `Histogram::merge` with foreign bounds.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.alpha == other.alpha
            && self.min_value == other.min_value
            && self.counts.len() == other.counts.len()
        {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
            self.underflow += other.underflow;
        } else {
            for _ in 0..other.underflow {
                let v = other.min_seen.max(0.0);
                if v <= self.min_value {
                    self.underflow += 1;
                } else {
                    let idx = ((v / self.min_value).ln() / self.ln_gamma).ceil() as usize;
                    let idx = idx.saturating_sub(1).min(self.counts.len() - 1);
                    self.counts[idx] += 1;
                }
            }
            for (idx, &c) in other.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let at = other.bucket_estimate(idx);
                let slot = if at <= self.min_value {
                    None
                } else {
                    let i = ((at / self.min_value).ln() / self.ln_gamma).ceil() as usize;
                    Some(i.saturating_sub(1).min(self.counts.len() - 1))
                };
                match slot {
                    Some(i) => self.counts[i] += c,
                    None => self.underflow += c,
                }
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min_seen < self.min_seen {
            self.min_seen = other.min_seen;
        }
        if other.max_seen > self.max_seen {
            self.max_seen = other.max_seen;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::default();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert!(s.p99().is_nan());
        assert_eq!(s.min(), None);
    }

    #[test]
    fn single_value_is_reported_exactly_at_every_quantile() {
        let mut s = QuantileSketch::default();
        s.observe(0.42);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = s.quantile(q).unwrap();
            assert!((est - 0.42).abs() / 0.42 <= s.alpha(), "q={q} est={est}");
        }
        assert_eq!(s.min(), Some(0.42));
        assert_eq!(s.max(), Some(0.42));
    }

    #[test]
    fn estimates_stay_within_alpha_of_exact_order_statistics() {
        // Deterministic LCG so the test needs no external RNG.
        let mut state = 0x9E37_79B9u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut s = QuantileSketch::default();
        let mut values = Vec::new();
        for _ in 0..5000 {
            // Log-uniform over ~[1e-3, 1e1] seconds.
            let v = 10f64.powf(next() * 4.0 - 3.0);
            s.observe(v);
            values.push(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&values, q);
            let est = s.quantile(q).unwrap();
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= s.alpha() * 1.0001,
                "q={q} exact={exact} est={est} rel={rel}"
            );
        }
    }

    #[test]
    fn underflow_values_report_the_observed_minimum() {
        let mut s = QuantileSketch::default();
        s.observe(0.0);
        s.observe(0.0);
        s.observe(1.0);
        assert_eq!(s.quantile(0.5), Some(0.0));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn overflow_values_clamp_to_the_top_bucket() {
        let mut s = QuantileSketch::with_range(0.01, 1e-3, 1.0);
        s.observe(50.0);
        let est = s.quantile(1.0).unwrap();
        assert_eq!(est, 50.0, "clamped to max_seen");
    }

    #[test]
    fn merge_of_same_config_matches_single_sketch() {
        let mut merged = QuantileSketch::default();
        let mut single = QuantileSketch::default();
        let mut shard = QuantileSketch::default();
        for i in 0..100 {
            let v = 0.01 * (i + 1) as f64;
            single.observe(v);
            if i % 2 == 0 {
                merged.observe(v);
            } else {
                shard.observe(v);
            }
        }
        merged.merge(&shard);
        assert_eq!(merged, single);
    }

    #[test]
    fn merge_order_does_not_matter_for_same_config() {
        let mut a = QuantileSketch::default();
        let mut b = QuantileSketch::default();
        for i in 0..50 {
            a.observe(0.1 + i as f64 * 0.01);
            b.observe(1.0 + i as f64 * 0.02);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_with_foreign_config_preserves_count_and_sum() {
        let mut a = QuantileSketch::new(0.01);
        let mut b = QuantileSketch::new(0.05);
        a.observe(0.5);
        b.observe(2.0);
        b.observe(0.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.sum() - 2.5).abs() < 1e-12);
        assert_eq!(a.max(), Some(2.0));
        assert_eq!(a.min(), Some(0.0));
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut s = QuantileSketch::default();
        s.observe(f64::NAN);
        s.observe(f64::INFINITY);
        assert!(s.is_empty());
    }
}
