//! Zero-dependency observability for the managed-upgrade workspace.
//!
//! The paper's management subsystem is "responsible … for logging the
//! information which may be needed for further analysis" (§4.1). This
//! crate is that logging layer, grown to production shape:
//!
//! * [`event::TraceEvent`] — typed trace events keyed on **virtual
//!   time** (the `simcore` clock, in seconds) and demand number, one
//!   variant per interesting middleware decision (dispatch, collected
//!   response, timeout, adjudication, confidence update, switch
//!   decision, release recovery).
//! * [`recorder::Recorder`] — the sink trait the hot paths write to.
//!   [`recorder::NullRecorder`] is the no-op default (uninstrumented
//!   runs stay bit-identical and near-zero-cost);
//!   [`recorder::MemoryRecorder`] collects events in memory;
//!   [`recorder::SharedRecorder`] shares one sink between subsystems;
//!   [`recorder::TraceRing`] is a bounded ring used by the `EventLog`
//!   compatibility shim.
//! * [`metrics::MetricsRegistry`] — labeled counters, gauges and
//!   fixed-bucket histograms, snapshotable to a Prometheus-text-style
//!   string and mergeable across runs.
//! * [`quantile::QuantileSketch`] — a log-scale-bucket quantile sketch
//!   with an exact relative-error bound, mergeable across replication
//!   shards, rendered as Prometheus summary series by the registry.
//! * [`slo::SloWindow`] — a ring of virtual-time windows tracking
//!   availability, fault rate, false-alarm rate and latency-threshold
//!   violations, polled as a [`slo::DependabilitySnapshot`].
//! * [`jsonl`] — a hand-rolled JSONL exporter (no serde) plus a small
//!   JSON parser used to validate traces in tests.
//! * [`span`] — wall-clock phase timers ([`span::PhaseTimings`]) and
//!   per-demand virtual-time span decomposition
//!   ([`span::DemandSpan`], [`span::SpanProfile`]).
//! * [`http`] — the shared hand-rolled HTTP/1.1 layer over `std::net`
//!   (framed request/response parsing, `Content-Length` bodies,
//!   keep-alive, bounded reads) behind every network surface in the
//!   workspace.
//! * [`export::MetricsExporter`] — a `/metrics` + `/health` +
//!   `/snapshot` endpoint built on that layer.
//!
//! Everything is plain `std`: the crate adds no dependencies and no
//! global state, and the only thread it ever spawns is the opt-in
//! metrics exporter's server thread (the simulation itself stays
//! single-threaded).
//!
//! # Example
//!
//! ```
//! use wsu_obs::event::TraceEvent;
//! use wsu_obs::metrics::MetricsRegistry;
//! use wsu_obs::recorder::{MemoryRecorder, Recorder};
//!
//! let mut recorder = MemoryRecorder::new();
//! recorder.record(TraceEvent::SwitchDecision {
//!     t: 12.5,
//!     demand: 400,
//!     decision: "switch-to-new".into(),
//!     reason: "criterion 3 satisfied".into(),
//! });
//! assert_eq!(recorder.events().len(), 1);
//!
//! let mut metrics = MetricsRegistry::new();
//! metrics.inc_counter("wsu_demands_total", &[("mode", "parallel")]);
//! assert!(metrics.snapshot().contains("wsu_demands_total"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod fleet;
pub mod http;
pub mod jsonl;
pub mod metrics;
pub mod quantile;
pub mod recorder;
pub mod slo;
pub mod span;

pub use event::TraceEvent;
pub use export::MetricsExporter;
pub use fleet::FleetGauges;
pub use http::{http_get, HttpClient, HttpConn, HttpResponse};
pub use jsonl::{parse_jsonl, JsonValue};
pub use metrics::{CounterId, GaugeId, HistogramId, MetricsRegistry, SharedRegistry, SketchId};
pub use quantile::QuantileSketch;
pub use recorder::{MemoryRecorder, NullRecorder, Recorder, SharedRecorder, TraceRing};
pub use slo::{DependabilitySnapshot, SloConfig, SloObservation, SloWindow};
pub use span::{DemandSpan, PhaseTimings, SpanProfile, SPAN_PHASES};
