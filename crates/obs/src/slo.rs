//! Windowed availability/SLO tracking over virtual time.
//!
//! [`SloWindow`] slices the virtual-time axis into fixed-width windows
//! and keeps a preallocated ring of the most recent ones, each tracking
//! availability, ground-truth fault rate, false-alarm rate and
//! latency-threshold violations. [`DependabilitySnapshot`] is the
//! poll-friendly aggregate a policy engine (or the `/snapshot` exporter
//! endpoint) reads: lifetime rates plus the worst completed window, so
//! a transient dip is visible even when the lifetime average looks
//! healthy.
//!
//! `observe` is allocation-free (ring-slot arithmetic only), so the
//! tracker can sit on the per-demand hot path next to the counting
//! allocator gate.

use std::fmt::Write as _;

/// Configuration for a [`SloWindow`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Width of one window, in virtual seconds.
    pub window_secs: f64,
    /// Number of windows retained in the ring.
    pub windows: usize,
    /// Response times strictly above this (seconds) count as latency
    /// violations.
    pub latency_threshold: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            window_secs: 60.0,
            windows: 64,
            latency_threshold: 2.0,
        }
    }
}

/// Per-window accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct WindowStats {
    epoch: u64,
    used: bool,
    demands: u64,
    available: u64,
    faults: u64,
    false_alarms: u64,
    latency_violations: u64,
    latency_sum: f64,
}

impl WindowStats {
    fn availability(&self) -> f64 {
        if self.demands == 0 {
            f64::NAN
        } else {
            self.available as f64 / self.demands as f64
        }
    }
}

/// One demand's dependability signals, as fed to
/// [`SloWindow::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloObservation {
    /// Virtual time of the demand's dispatch, in seconds.
    pub t: f64,
    /// Whether the system produced a response (verdict ≠ unavailable).
    pub available: bool,
    /// Whether ground truth says some release failed on this demand.
    pub fault: bool,
    /// Whether the failure detector raised a false alarm.
    pub false_alarm: bool,
    /// System response time, in seconds.
    pub response_time: f64,
}

/// A ring of virtual-time windows tracking availability and SLO
/// signals.
#[derive(Debug, Clone, PartialEq)]
pub struct SloWindow {
    config: SloConfig,
    ring: Vec<WindowStats>,
    current_epoch: u64,
    // Lifetime totals (never evicted).
    demands: u64,
    available: u64,
    faults: u64,
    false_alarms: u64,
    latency_violations: u64,
    latency_sum: f64,
    // Windows evicted from the ring.
    closed_windows: u64,
    worst_closed: f64,
}

impl Default for SloWindow {
    fn default() -> Self {
        Self::new(SloConfig::default())
    }
}

impl SloWindow {
    /// A tracker with the given configuration (ring allocated up
    /// front).
    pub fn new(config: SloConfig) -> Self {
        assert!(config.window_secs > 0.0, "window_secs must be positive");
        let windows = config.windows.max(1);
        Self {
            config: SloConfig { windows, ..config },
            ring: vec![WindowStats::default(); windows],
            current_epoch: 0,
            demands: 0,
            available: 0,
            faults: 0,
            false_alarms: 0,
            latency_violations: 0,
            latency_sum: 0.0,
            closed_windows: 0,
            worst_closed: f64::INFINITY,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Total demands observed.
    pub fn demands(&self) -> u64 {
        self.demands
    }

    /// Feeds one demand. Allocation-free.
    pub fn observe(&mut self, obs: SloObservation) {
        let epoch = (obs.t.max(0.0) / self.config.window_secs) as u64;
        let slot = (epoch % self.config.windows as u64) as usize;
        let w = &mut self.ring[slot];
        if !w.used || w.epoch != epoch {
            if w.used && w.demands > 0 {
                // Evicting a window closes it for good; keep its
                // availability in the lifetime floor.
                self.closed_windows += 1;
                let avail = w.availability();
                if avail < self.worst_closed {
                    self.worst_closed = avail;
                }
            }
            *w = WindowStats {
                epoch,
                used: true,
                ..WindowStats::default()
            };
        }
        if epoch > self.current_epoch {
            self.current_epoch = epoch;
        }
        let violation = obs.response_time > self.config.latency_threshold;
        let w = &mut self.ring[slot];
        w.demands += 1;
        w.available += obs.available as u64;
        w.faults += obs.fault as u64;
        w.false_alarms += obs.false_alarm as u64;
        w.latency_violations += violation as u64;
        w.latency_sum += obs.response_time;

        self.demands += 1;
        self.available += obs.available as u64;
        self.faults += obs.fault as u64;
        self.false_alarms += obs.false_alarm as u64;
        self.latency_violations += violation as u64;
        self.latency_sum += obs.response_time;
    }

    /// Number of windows completed so far (evicted from the ring or
    /// still in it but older than the current window), counting only
    /// windows that saw at least one demand.
    pub fn complete_windows(&self) -> u64 {
        let in_ring = self
            .ring
            .iter()
            .filter(|w| w.used && w.demands > 0 && w.epoch < self.current_epoch)
            .count() as u64;
        self.closed_windows + in_ring
    }

    /// The lowest availability over all completed windows; falls back
    /// to the lifetime availability while no window has completed.
    /// `NaN` before any demand.
    pub fn worst_window_availability(&self) -> f64 {
        let mut worst = self.worst_closed;
        for w in &self.ring {
            if w.used && w.demands > 0 && w.epoch < self.current_epoch {
                let avail = w.availability();
                if avail < worst {
                    worst = avail;
                }
            }
        }
        if worst.is_finite() {
            worst
        } else if self.demands > 0 {
            self.available as f64 / self.demands as f64
        } else {
            f64::NAN
        }
    }

    /// The poll-friendly aggregate of everything the tracker knows.
    pub fn snapshot(&self) -> DependabilitySnapshot {
        let n = self.demands as f64;
        let rate = |x: u64| {
            if self.demands == 0 {
                f64::NAN
            } else {
                x as f64 / n
            }
        };
        let current = self
            .ring
            .iter()
            .find(|w| w.used && w.epoch == self.current_epoch);
        DependabilitySnapshot {
            demands: self.demands,
            window_secs: self.config.window_secs,
            latency_threshold: self.config.latency_threshold,
            availability: rate(self.available),
            fault_rate: rate(self.faults),
            false_alarm_rate: rate(self.false_alarms),
            latency_violation_rate: rate(self.latency_violations),
            mean_latency: if self.demands == 0 {
                f64::NAN
            } else {
                self.latency_sum / n
            },
            complete_windows: self.complete_windows(),
            worst_window_availability: self.worst_window_availability(),
            current_window_demands: current.map(|w| w.demands).unwrap_or(0),
            current_window_availability: current.map(|w| w.availability()).unwrap_or(f64::NAN),
        }
    }
}

/// Aggregated dependability state, as polled by a policy engine or
/// served on `/snapshot`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DependabilitySnapshot {
    /// Total demands observed.
    pub demands: u64,
    /// Window width, in virtual seconds.
    pub window_secs: f64,
    /// The latency-violation threshold, in seconds.
    pub latency_threshold: f64,
    /// Lifetime availability (fraction of demands answered).
    pub availability: f64,
    /// Lifetime ground-truth fault rate.
    pub fault_rate: f64,
    /// Lifetime false-alarm rate.
    pub false_alarm_rate: f64,
    /// Lifetime latency-violation rate.
    pub latency_violation_rate: f64,
    /// Lifetime mean response time, in seconds.
    pub mean_latency: f64,
    /// Number of completed windows that saw demands.
    pub complete_windows: u64,
    /// Lowest availability over completed windows (lifetime
    /// availability while none has completed).
    pub worst_window_availability: f64,
    /// Demands in the currently filling window.
    pub current_window_demands: u64,
    /// Availability of the currently filling window.
    pub current_window_availability: f64,
}

impl DependabilitySnapshot {
    /// Serialises the snapshot as one JSON object (non-finite values
    /// become `null`, as in the trace format).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"wsu-snapshot/1\"");
        let num = |key: &str, v: f64| {
            let mut s = String::new();
            if v.is_finite() {
                let _ = write!(s, ",\"{key}\":{v}");
            } else {
                let _ = write!(s, ",\"{key}\":null");
            }
            s
        };
        let _ = write!(out, ",\"demands\":{}", self.demands);
        out.push_str(&num("window_secs", self.window_secs));
        out.push_str(&num("latency_threshold", self.latency_threshold));
        out.push_str(&num("availability", self.availability));
        out.push_str(&num("fault_rate", self.fault_rate));
        out.push_str(&num("false_alarm_rate", self.false_alarm_rate));
        out.push_str(&num("latency_violation_rate", self.latency_violation_rate));
        out.push_str(&num("mean_latency", self.mean_latency));
        let _ = write!(out, ",\"complete_windows\":{}", self.complete_windows);
        out.push_str(&num(
            "worst_window_availability",
            self.worst_window_availability,
        ));
        let _ = write!(
            out,
            ",\"current_window_demands\":{}",
            self.current_window_demands
        );
        out.push_str(&num(
            "current_window_availability",
            self.current_window_availability,
        ));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(t: f64, available: bool) -> SloObservation {
        SloObservation {
            t,
            available,
            fault: !available,
            false_alarm: false,
            response_time: if available { 0.5 } else { 2.1 },
        }
    }

    #[test]
    fn empty_tracker_reports_nan_rates() {
        let w = SloWindow::default();
        let snap = w.snapshot();
        assert_eq!(snap.demands, 0);
        assert!(snap.availability.is_nan());
        assert!(snap.worst_window_availability.is_nan());
    }

    #[test]
    fn windows_partition_virtual_time() {
        let mut w = SloWindow::new(SloConfig {
            window_secs: 10.0,
            windows: 4,
            latency_threshold: 2.0,
        });
        for i in 0..10 {
            w.observe(obs(i as f64, true));
        }
        // All ten demands in window [0, 10): one current window, none
        // complete yet.
        assert_eq!(w.complete_windows(), 0);
        w.observe(obs(10.5, false));
        assert_eq!(w.complete_windows(), 1);
        let snap = w.snapshot();
        assert_eq!(snap.demands, 11);
        assert_eq!(snap.current_window_demands, 1);
        assert_eq!(snap.current_window_availability, 0.0);
        assert_eq!(snap.worst_window_availability, 1.0);
    }

    #[test]
    fn worst_window_tracks_evicted_windows() {
        let mut w = SloWindow::new(SloConfig {
            window_secs: 1.0,
            windows: 2,
            latency_threshold: 2.0,
        });
        // Window 0: 1 of 2 available (availability 0.5), then push far
        // enough ahead that it is evicted from the two-slot ring.
        w.observe(obs(0.1, true));
        w.observe(obs(0.2, false));
        for e in 1..6 {
            w.observe(obs(e as f64 + 0.5, true));
        }
        let snap = w.snapshot();
        assert_eq!(snap.worst_window_availability, 0.5);
        assert!(snap.complete_windows >= 5);
    }

    #[test]
    fn latency_violations_use_strict_threshold() {
        let mut w = SloWindow::new(SloConfig {
            window_secs: 60.0,
            windows: 4,
            latency_threshold: 2.0,
        });
        w.observe(SloObservation {
            t: 0.0,
            available: true,
            fault: false,
            false_alarm: false,
            response_time: 2.0,
        });
        w.observe(SloObservation {
            t: 1.0,
            available: true,
            fault: false,
            false_alarm: true,
            response_time: 2.1,
        });
        let snap = w.snapshot();
        assert_eq!(snap.latency_violation_rate, 0.5);
        assert_eq!(snap.false_alarm_rate, 0.5);
        assert_eq!(snap.fault_rate, 0.0);
    }

    #[test]
    fn snapshot_serialises_to_json() {
        let mut w = SloWindow::default();
        w.observe(obs(0.0, true));
        let json = w.snapshot().to_json();
        assert!(json.starts_with("{\"schema\":\"wsu-snapshot/1\""), "{json}");
        assert!(json.contains("\"demands\":1"), "{json}");
        assert!(json.contains("\"availability\":1"), "{json}");
        assert!(json.ends_with('}'), "{json}");
        // Round-trips through the crate's own JSON parser.
        let parsed = crate::jsonl::parse_jsonl(&json).unwrap();
        assert_eq!(parsed[0].get("demands").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn worst_window_falls_back_to_lifetime_before_first_completion() {
        let mut w = SloWindow::default();
        w.observe(obs(0.0, true));
        w.observe(obs(1.0, false));
        let snap = w.snapshot();
        assert_eq!(snap.complete_windows, 0);
        assert_eq!(snap.worst_window_availability, 0.5);
    }
}
