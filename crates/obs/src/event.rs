//! Typed trace events keyed on virtual time and demand number.
//!
//! Every variant carries `t` — the **dispatch instant of the demand in
//! virtual time** (seconds on the `simcore` clock) — and the demand
//! sequence number. Stamping all of a demand's events with its dispatch
//! instant keeps a trace monotonically non-decreasing in both `t` and
//! `demand` whenever demands are processed in order; per-event latencies
//! (execution time, response time) travel as payload fields instead.

use std::borrow::Cow;
use std::fmt::Write as _;

/// One structured trace event.
///
/// Serialised to a single JSON object per line by [`TraceEvent::to_json`];
/// the `kind` field names the variant.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A demand was dispatched to the active releases.
    DemandDispatched {
        /// Virtual time of dispatch, in seconds.
        t: f64,
        /// Demand sequence number (1-based).
        demand: u64,
        /// Number of releases the demand was dispatched to.
        releases: usize,
        /// Operating-mode label (e.g. `parallel-reliability`). Borrowed
        /// for the fixed modes, so per-demand emission does not allocate.
        mode: Cow<'static, str>,
    },
    /// A release responded within the timeout.
    ResponseCollected {
        /// Virtual time of dispatch, in seconds.
        t: f64,
        /// Demand sequence number.
        demand: u64,
        /// Index of the responding release in deployment order.
        release: usize,
        /// Response classification label (`CR`, `ER` or `NER`); always a
        /// borrowed `&'static` label on the hot path.
        class: Cow<'static, str>,
        /// Execution time of this release, in seconds.
        exec_time: f64,
    },
    /// A release failed to respond within the timeout.
    Timeout {
        /// Virtual time of dispatch, in seconds.
        t: f64,
        /// Demand sequence number.
        demand: u64,
        /// Index of the timed-out release.
        release: usize,
        /// The timeout that was exceeded, in seconds.
        timeout: f64,
    },
    /// The adjudicator produced the system response.
    Adjudicated {
        /// Virtual time of dispatch, in seconds.
        t: f64,
        /// Demand sequence number.
        demand: u64,
        /// System verdict label (`CR`, `ER`, `NER` or `NRDT`); always a
        /// borrowed `&'static` label on the hot path.
        verdict: Cow<'static, str>,
        /// Release whose response was selected, if any.
        source: Option<usize>,
        /// How many releases responded within the timeout.
        responders: usize,
        /// System response time, in seconds.
        response_time: f64,
    },
    /// A Bayesian assessment refreshed the confidence in the releases.
    ConfidenceUpdated {
        /// Virtual time, in seconds.
        t: f64,
        /// Demands observed so far.
        demand: u64,
        /// 99% posterior percentile of the old release's pfd.
        old_p99: f64,
        /// 99% posterior percentile of the new release's pfd.
        new_p99: f64,
        /// Switching-criterion label being evaluated.
        criterion: String,
        /// Whether the criterion was satisfied at this assessment.
        satisfied: bool,
    },
    /// The management subsystem changed (or aborted) the upgrade phase.
    SwitchDecision {
        /// Virtual time, in seconds.
        t: f64,
        /// Demand at which the decision was taken.
        demand: u64,
        /// Decision label (`switch-to-new` or `abort`).
        decision: String,
        /// Human-readable rationale.
        reason: String,
    },
    /// A release was suspended or restarted by the recovery policy.
    ReleaseSuspended {
        /// Virtual time, in seconds.
        t: f64,
        /// Demand at which recovery acted.
        demand: u64,
        /// Index of the affected release.
        release: usize,
        /// Recovery action label (`suspended` or `restarted`).
        action: String,
    },
    /// A fault injector perturbed (or suppressed) a release's response.
    FaultInjected {
        /// Virtual time, in seconds (the injector's last-seen clock).
        t: f64,
        /// Injector-local demand sequence number (1-based).
        demand: u64,
        /// Release label of the wrapped endpoint.
        release: String,
        /// Name of the fault clause that fired.
        clause: String,
        /// Stable fault-kind label (e.g. `crash`, `wrong-evident`).
        kind: String,
    },
    /// A demand's virtual-time span closed, with its cost attributed
    /// per middleware phase. All fields are in seconds; phases that the
    /// paper's timing model charges nothing for (detection, Bayes
    /// update, recovery) are carried explicitly so the attribution is
    /// auditable and richer timing models slot in without a schema
    /// change. Payload is all-numeric, so per-demand emission does not
    /// allocate.
    SpanClosed {
        /// Virtual time of dispatch, in seconds.
        t: f64,
        /// Demand sequence number.
        demand: u64,
        /// Time spent waiting on release responses (transport +
        /// execution), in seconds.
        transport: f64,
        /// Time attributed to failure detection, in seconds.
        detection: f64,
        /// Time attributed to adjudication (the paper's `dT`), in
        /// seconds.
        adjudication: f64,
        /// Time attributed to the Bayesian confidence update, in
        /// seconds.
        bayes: f64,
        /// Time attributed to recovery actions, in seconds.
        recovery: f64,
    },
    /// A free-form log line (the `EventLog` compatibility path).
    Log {
        /// Virtual time, in seconds (0 when the logger has no clock).
        t: f64,
        /// Demand the message refers to.
        demand: u64,
        /// Severity label (`Info`, `Warning`, `Decision`).
        level: String,
        /// The message text.
        message: String,
    },
}

impl TraceEvent {
    /// The variant name, as serialised in the `kind` JSON field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::DemandDispatched { .. } => "DemandDispatched",
            TraceEvent::ResponseCollected { .. } => "ResponseCollected",
            TraceEvent::Timeout { .. } => "Timeout",
            TraceEvent::Adjudicated { .. } => "Adjudicated",
            TraceEvent::ConfidenceUpdated { .. } => "ConfidenceUpdated",
            TraceEvent::SwitchDecision { .. } => "SwitchDecision",
            TraceEvent::ReleaseSuspended { .. } => "ReleaseSuspended",
            TraceEvent::FaultInjected { .. } => "FaultInjected",
            TraceEvent::SpanClosed { .. } => "SpanClosed",
            TraceEvent::Log { .. } => "Log",
        }
    }

    /// The virtual timestamp, in seconds.
    pub fn virtual_time(&self) -> f64 {
        match self {
            TraceEvent::DemandDispatched { t, .. }
            | TraceEvent::ResponseCollected { t, .. }
            | TraceEvent::Timeout { t, .. }
            | TraceEvent::Adjudicated { t, .. }
            | TraceEvent::ConfidenceUpdated { t, .. }
            | TraceEvent::SwitchDecision { t, .. }
            | TraceEvent::ReleaseSuspended { t, .. }
            | TraceEvent::FaultInjected { t, .. }
            | TraceEvent::SpanClosed { t, .. }
            | TraceEvent::Log { t, .. } => *t,
        }
    }

    /// The demand sequence number the event refers to.
    pub fn demand(&self) -> u64 {
        match self {
            TraceEvent::DemandDispatched { demand, .. }
            | TraceEvent::ResponseCollected { demand, .. }
            | TraceEvent::Timeout { demand, .. }
            | TraceEvent::Adjudicated { demand, .. }
            | TraceEvent::ConfidenceUpdated { demand, .. }
            | TraceEvent::SwitchDecision { demand, .. }
            | TraceEvent::ReleaseSuspended { demand, .. }
            | TraceEvent::FaultInjected { demand, .. }
            | TraceEvent::SpanClosed { demand, .. }
            | TraceEvent::Log { demand, .. } => *demand,
        }
    }

    /// Serialises the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = JsonObject::new();
        w.str_field("kind", self.kind());
        w.num_field("t", self.virtual_time());
        w.uint_field("demand", self.demand());
        match self {
            TraceEvent::DemandDispatched { releases, mode, .. } => {
                w.uint_field("releases", *releases as u64);
                w.str_field("mode", mode);
            }
            TraceEvent::ResponseCollected {
                release,
                class,
                exec_time,
                ..
            } => {
                w.uint_field("release", *release as u64);
                w.str_field("class", class);
                w.num_field("exec_time", *exec_time);
            }
            TraceEvent::Timeout {
                release, timeout, ..
            } => {
                w.uint_field("release", *release as u64);
                w.num_field("timeout", *timeout);
            }
            TraceEvent::Adjudicated {
                verdict,
                source,
                responders,
                response_time,
                ..
            } => {
                w.str_field("verdict", verdict);
                match source {
                    Some(s) => w.uint_field("source", *s as u64),
                    None => w.null_field("source"),
                }
                w.uint_field("responders", *responders as u64);
                w.num_field("response_time", *response_time);
            }
            TraceEvent::ConfidenceUpdated {
                old_p99,
                new_p99,
                criterion,
                satisfied,
                ..
            } => {
                w.num_field("old_p99", *old_p99);
                w.num_field("new_p99", *new_p99);
                w.str_field("criterion", criterion);
                w.bool_field("satisfied", *satisfied);
            }
            TraceEvent::SwitchDecision {
                decision, reason, ..
            } => {
                w.str_field("decision", decision);
                w.str_field("reason", reason);
            }
            TraceEvent::ReleaseSuspended {
                release, action, ..
            } => {
                w.uint_field("release", *release as u64);
                w.str_field("action", action);
            }
            TraceEvent::FaultInjected {
                release,
                clause,
                kind,
                ..
            } => {
                w.str_field("release", release);
                w.str_field("clause", clause);
                w.str_field("fault", kind);
            }
            TraceEvent::SpanClosed {
                transport,
                detection,
                adjudication,
                bayes,
                recovery,
                ..
            } => {
                w.num_field("transport", *transport);
                w.num_field("detection", *detection);
                w.num_field("adjudication", *adjudication);
                w.num_field("bayes", *bayes);
                w.num_field("recovery", *recovery);
                w.num_field(
                    "total",
                    transport + detection + adjudication + bayes + recovery,
                );
            }
            TraceEvent::Log { level, message, .. } => {
                w.str_field("level", level);
                w.str_field("message", message);
            }
        }
        w.finish()
    }
}

/// Escapes a string for inclusion in JSON output (without quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental writer for a flat JSON object.
struct JsonObject {
    out: String,
}

impl JsonObject {
    fn new() -> Self {
        Self {
            out: String::from("{"),
        }
    }

    fn sep(&mut self) {
        if self.out.len() > 1 {
            self.out.push(',');
        }
    }

    fn str_field(&mut self, key: &str, value: &str) {
        self.sep();
        let _ = write!(
            self.out,
            "\"{}\":\"{}\"",
            json_escape(key),
            json_escape(value)
        );
    }

    fn num_field(&mut self, key: &str, value: f64) {
        self.sep();
        if value.is_finite() {
            let _ = write!(self.out, "\"{}\":{}", json_escape(key), fmt_f64(value));
        } else {
            let _ = write!(self.out, "\"{}\":null", json_escape(key));
        }
    }

    fn uint_field(&mut self, key: &str, value: u64) {
        self.sep();
        let _ = write!(self.out, "\"{}\":{}", json_escape(key), value);
    }

    fn bool_field(&mut self, key: &str, value: bool) {
        self.sep();
        let _ = write!(self.out, "\"{}\":{}", json_escape(key), value);
    }

    fn null_field(&mut self, key: &str) {
        self.sep();
        let _ = write!(self.out, "\"{}\":null", json_escape(key));
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Formats a finite `f64` so the output is valid JSON and round-trips.
/// (`{}` on f64 round-trips; integers print without a dot, which JSON
/// still accepts as a number.)
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_and_accessors() {
        let ev = TraceEvent::Adjudicated {
            t: 1.5,
            demand: 3,
            verdict: "CR".into(),
            source: Some(1),
            responders: 2,
            response_time: 0.4,
        };
        assert_eq!(ev.kind(), "Adjudicated");
        assert_eq!(ev.virtual_time(), 1.5);
        assert_eq!(ev.demand(), 3);
    }

    #[test]
    fn json_shape() {
        let ev = TraceEvent::SwitchDecision {
            t: 2.0,
            demand: 10,
            decision: "switch-to-new".into(),
            reason: "criterion \"3\"".into(),
        };
        let json = ev.to_json();
        assert!(json.starts_with("{\"kind\":\"SwitchDecision\""), "{json}");
        assert!(json.contains("\"t\":2"), "{json}");
        assert!(json.contains("\\\"3\\\""), "{json}");
        assert!(json.ends_with('}'));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let ev = TraceEvent::ConfidenceUpdated {
            t: 0.0,
            demand: 1,
            old_p99: f64::NAN,
            new_p99: 0.5,
            criterion: "c1".into(),
            satisfied: false,
        };
        let json = ev.to_json();
        assert!(json.contains("\"old_p99\":null"), "{json}");
        assert!(json.contains("\"new_p99\":0.5"), "{json}");
    }

    #[test]
    fn escape_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
