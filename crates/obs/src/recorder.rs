//! Event sinks: the [`Recorder`] trait and its implementations.
//!
//! Hot paths hold a `Box<dyn Recorder>` and guard emission with
//! [`Recorder::enabled`], so the uninstrumented default
//! ([`NullRecorder`]) costs one virtual call returning a constant
//! `false` per potential event — no allocation, no formatting.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::rc::Rc;

use crate::event::TraceEvent;
use crate::jsonl;

/// A sink for [`TraceEvent`]s.
pub trait Recorder {
    /// Whether events will actually be kept. Callers should skip
    /// constructing events when this is `false`.
    fn enabled(&self) -> bool;

    /// Consumes one event.
    fn record(&mut self, event: TraceEvent);
}

/// The no-op recorder: [`enabled`](Recorder::enabled) is `false` and
/// [`record`](Recorder::record) drops the event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// Collects every event in memory, in arrival order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryRecorder {
    events: Vec<TraceEvent>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in arrival order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Removes and returns all recorded events.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Reserves room for at least `additional` more events, so a
    /// measured steady-state window can record without reallocating.
    pub fn reserve(&mut self, additional: usize) {
        self.events.reserve(additional);
    }

    /// Writes the events as JSONL to `path`, creating parent
    /// directories as needed.
    pub fn write_jsonl(&self, path: &Path) -> io::Result<()> {
        jsonl::write_events(path, &self.events)
    }
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// A cloneable handle to one shared [`MemoryRecorder`], so the
/// middleware, monitor and orchestrator can all append to a single
/// trace. Single-threaded by design (`Rc<RefCell<…>>`), like the
/// simulation itself.
#[derive(Debug, Clone, Default)]
pub struct SharedRecorder {
    inner: Rc<RefCell<MemoryRecorder>>,
}

impl SharedRecorder {
    /// A new, empty shared recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the events recorded so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events().to_vec()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&self, additional: usize) {
        self.inner.borrow_mut().reserve(additional);
    }

    /// Writes the events as JSONL to `path`, creating parent
    /// directories as needed.
    pub fn write_jsonl(&self, path: &Path) -> io::Result<()> {
        self.inner.borrow().write_jsonl(path)
    }
}

impl Recorder for SharedRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        self.inner.borrow_mut().record(event);
    }
}

/// A bounded ring of events: once `capacity` is reached, the oldest
/// event is evicted and counted as dropped. Backs the `EventLog`
/// compatibility shim in `wsu-core`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRing {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Iterates over the retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events have been evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Discards all retained events (the dropped count is kept).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl Recorder for TraceRing {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(demand: u64) -> TraceEvent {
        TraceEvent::Log {
            t: demand as f64,
            demand,
            level: "Info".into(),
            message: format!("m{demand}"),
        }
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(ev(1));
    }

    #[test]
    fn memory_recorder_keeps_order() {
        let mut r = MemoryRecorder::new();
        r.record(ev(1));
        r.record(ev(2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.events()[0].demand(), 1);
        let taken = r.take();
        assert_eq!(taken.len(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn shared_recorder_clones_share_a_sink() {
        let shared = SharedRecorder::new();
        let mut a = shared.clone();
        let mut b = shared.clone();
        a.record(ev(1));
        b.record(ev(2));
        assert_eq!(shared.len(), 2);
        assert_eq!(shared.snapshot()[1].demand(), 2);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut ring = TraceRing::new(2);
        ring.record(ev(1));
        ring.record(ev(2));
        ring.record(ev(3));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 1);
        let demands: Vec<u64> = ring.iter().map(|e| e.demand()).collect();
        assert_eq!(demands, vec![2, 3]);
    }
}
