//! A hand-rolled HTTP/1.1 exporter over `std::net` — the workspace's
//! first real network surface.
//!
//! [`MetricsExporter`] binds a `TcpListener` and serves three `GET`
//! routes from a background thread:
//!
//! * `/metrics` — the last published Prometheus-text snapshot,
//! * `/snapshot` — the last published JSON dependability snapshot,
//! * `/health` — a constant liveness probe.
//!
//! The simulation is single-threaded (`SharedRegistry` is
//! `Rc<RefCell<…>>` and not `Send`), so the exporter never touches the
//! registry: the owning thread renders a snapshot **string** and
//! [`publish_metrics`](MetricsExporter::publish_metrics)es it into an
//! `Arc<Mutex<String>>` whenever convenient — outside the demand loop,
//! so serving adds zero allocations to the hot path (the server
//! allocates on its own thread). Responses are therefore byte-identical
//! to the in-process rendering at publish time.
//!
//! [`http_get`] is the matching hand-rolled client, used by the tests
//! and the CI exporter smoke step so the whole round trip stays
//! dependency-free.

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// State shared between the owning thread and the server thread.
#[derive(Debug)]
struct ExporterState {
    metrics: Mutex<String>,
    snapshot: Mutex<String>,
    shutdown: AtomicBool,
}

/// A live `/metrics` + `/snapshot` + `/health` endpoint.
///
/// Dropping the exporter shuts the server thread down.
#[derive(Debug)]
pub struct MetricsExporter {
    state: Arc<ExporterState>,
    addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the server thread. Both published bodies start empty.
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ExporterState {
            metrics: Mutex::new(String::new()),
            snapshot: Mutex::new(String::from("{}")),
            shutdown: AtomicBool::new(false),
        });
        let server_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("wsu-metrics-exporter".into())
            .spawn(move || serve(listener, &server_state))?;
        Ok(Self {
            state,
            addr,
            handle: Some(handle),
        })
    }

    /// The bound address (reports the actual port after binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Publishes the Prometheus-text body served on `/metrics`.
    pub fn publish_metrics(&self, text: &str) {
        if let Ok(mut slot) = self.state.metrics.lock() {
            slot.clear();
            slot.push_str(text);
        }
    }

    /// Publishes the JSON body served on `/snapshot`.
    pub fn publish_snapshot(&self, json: &str) {
        if let Ok(mut slot) = self.state.snapshot.lock() {
            slot.clear();
            slot.push_str(json);
        }
    }

    /// Stops the server thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The blocking accept loop run on the exporter thread.
fn serve(listener: TcpListener, state: &ExporterState) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let _ = handle_connection(stream, state);
    }
}

/// Reads one request and writes one response (`Connection: close`).
fn handle_connection(mut stream: TcpStream, state: &ExporterState) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let request = read_head(&mut stream)?;
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Strip any query string; routes take no parameters.
    let path = path.split('?').next().unwrap_or("");
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
    }
    match path {
        "/metrics" => {
            let body = state.metrics.lock().map(|s| s.clone()).unwrap_or_default();
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/snapshot" => {
            let body = state.snapshot.lock().map(|s| s.clone()).unwrap_or_default();
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        "/health" => respond(&mut stream, "200 OK", "text/plain; charset=utf-8", "ok\n"),
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n",
        ),
    }
}

/// Reads until the end of the request head (`\r\n\r\n`), bounded at 8
/// KiB — enough for any client this repo speaks to.
fn read_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while head.len() < 8192 {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        }
    }
    Ok(String::from_utf8_lossy(&head).into_owned())
}

/// Writes a minimal HTTP/1.1 response.
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A parsed HTTP response from [`http_get`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// The numeric status code (e.g. 200).
    pub status: u16,
    /// The response body.
    pub body: String,
}

/// Fetches `path` from `addr` with one blocking HTTP/1.1 GET — the
/// hand-rolled client used by tests and the CI exporter smoke step.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> io::Result<HttpResponse> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = match raw.find("\r\n\r\n") {
        Some(i) => (&raw[..i], &raw[i + 4..]),
        None => (raw.as_str(), ""),
    };
    let status = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    Ok(HttpResponse {
        status,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_published_metrics_byte_identically() {
        let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
        let snapshot = "# TYPE wsu_demands_total counter\nwsu_demands_total 42\n";
        exporter.publish_metrics(snapshot);
        let response = http_get(exporter.local_addr(), "/metrics").expect("GET /metrics");
        assert_eq!(response.status, 200);
        assert_eq!(response.body, snapshot);
        exporter.shutdown();
    }

    #[test]
    fn health_and_snapshot_routes_respond() {
        let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
        exporter.publish_snapshot("{\"demands\":7}");
        let health = http_get(exporter.local_addr(), "/health").expect("GET /health");
        assert_eq!(health.status, 200);
        assert_eq!(health.body, "ok\n");
        let snap = http_get(exporter.local_addr(), "/snapshot").expect("GET /snapshot");
        assert_eq!(snap.status, 200);
        assert_eq!(snap.body, "{\"demands\":7}");
    }

    #[test]
    fn unknown_route_is_404() {
        let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
        let response = http_get(exporter.local_addr(), "/nope").expect("GET /nope");
        assert_eq!(response.status, 404);
    }

    #[test]
    fn republishing_replaces_the_served_body() {
        let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
        exporter.publish_metrics("a 1\n");
        exporter.publish_metrics("a 2\n");
        let response = http_get(exporter.local_addr(), "/metrics").expect("GET");
        assert_eq!(response.body, "a 2\n");
    }

    #[test]
    fn query_strings_are_ignored() {
        let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
        exporter.publish_metrics("m 1\n");
        let response = http_get(exporter.local_addr(), "/metrics?x=1").expect("GET");
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "m 1\n");
    }
}
