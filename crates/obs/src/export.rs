//! The live `/metrics` + `/snapshot` + `/health` endpoint, built on the
//! shared hand-rolled HTTP layer ([`crate::http`]).
//!
//! [`MetricsExporter`] binds a `TcpListener` and serves three `GET`
//! routes from a background thread:
//!
//! * `/metrics` — the last published Prometheus-text snapshot,
//! * `/snapshot` — the last published JSON dependability snapshot,
//! * `/health` — a constant liveness probe.
//!
//! The simulation is single-threaded (`SharedRegistry` is
//! `Rc<RefCell<…>>` and not `Send`), so the exporter never touches the
//! registry: the owning thread renders a snapshot **string** and
//! [`publish_metrics`](MetricsExporter::publish_metrics)es it into an
//! `Arc<Mutex<String>>` whenever convenient — outside the demand loop,
//! so serving adds zero allocations to the hot path (the server
//! allocates on its own thread). Responses are therefore byte-identical
//! to the in-process rendering at publish time.
//!
//! Protocol behaviour (the PR 8 bug fixes):
//!
//! * request framing, keep-alive and bounded reads come from
//!   [`crate::http`] — one buffered reader instead of the old
//!   one-syscall-per-byte loop;
//! * an empty or malformed head is answered `400 Bad Request` (the old
//!   code parsed it as method `""` and said `405`); genuine method
//!   mismatches earn `405` **with an `Allow: GET` header**;
//! * shutdown no longer relies on a throwaway connect to the bound
//!   address (which fails when bound to `0.0.0.0`): the accept loop
//!   polls a nonblocking listener, and the wake-up connect — a latency
//!   optimisation, not a correctness requirement — targets a
//!   loopback-rewritten address and tolerates failure.

use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{HttpConn, RecvError, Request, Response};

// Re-exported here for compatibility: these types originated in this
// module before the HTTP layer was factored out.
pub use crate::http::{http_get, HttpResponse};

/// State shared between the owning thread and the server thread.
#[derive(Debug)]
struct ExporterState {
    metrics: Mutex<String>,
    snapshot: Mutex<String>,
    shutdown: AtomicBool,
}

/// A live `/metrics` + `/snapshot` + `/health` endpoint.
///
/// Dropping the exporter shuts the server thread down.
#[derive(Debug)]
pub struct MetricsExporter {
    state: Arc<ExporterState>,
    addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the server thread. Both published bodies start empty.
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        // Nonblocking so the accept loop can observe the shutdown flag
        // even if nobody ever connects again (see `stop`).
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ExporterState {
            metrics: Mutex::new(String::new()),
            snapshot: Mutex::new(String::from("{}")),
            shutdown: AtomicBool::new(false),
        });
        let server_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("wsu-metrics-exporter".into())
            .spawn(move || serve(&listener, &server_state))?;
        Ok(Self {
            state,
            addr,
            handle: Some(handle),
        })
    }

    /// The bound address (reports the actual port after binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Publishes the Prometheus-text body served on `/metrics`.
    pub fn publish_metrics(&self, text: &str) {
        if let Ok(mut slot) = self.state.metrics.lock() {
            slot.clear();
            slot.push_str(text);
        }
    }

    /// Publishes the JSON body served on `/snapshot`.
    pub fn publish_snapshot(&self, json: &str) {
        if let Ok(mut slot) = self.state.snapshot.lock() {
            slot.clear();
            slot.push_str(json);
        }
    }

    /// Stops the server thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Best-effort wake-up so the accept loop notices the flag
        // immediately instead of on its next poll tick. The bound
        // address may be unspecified (`0.0.0.0` / `::`), which is not
        // connectable — rewrite it to the matching loopback. Shutdown
        // stays correct even if this connect fails (the poll loop exits
        // on its own), so the result is deliberately ignored.
        let _ = TcpStream::connect_timeout(&wake_addr(self.addr), Duration::from_millis(100));
        let _ = handle.join();
    }
}

/// The address `stop` connects to in order to nudge the accept loop:
/// the listener's own address with unspecified IPs (`0.0.0.0`, `::`)
/// rewritten to the matching loopback.
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    let mut addr = bound;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.stop();
    }
}

/// How long the accept loop sleeps between polls when idle. Shutdown
/// latency is bounded by this even when the wake-up connect fails.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Per-connection read timeout: bounds slow-loris heads and idle
/// keep-alive connections (the exporter serves one connection at a
/// time, so a stalled peer must not block later scrapes for long).
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// The accept loop run on the exporter thread (nonblocking poll).
fn serve(listener: &TcpListener, state: &ExporterState) {
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle_connection(stream, state);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => continue,
        }
    }
}

/// Serves one connection: requests are answered until the peer stops
/// keeping the connection alive, errors out, or the exporter shuts
/// down.
fn handle_connection(stream: TcpStream, state: &ExporterState) -> io::Result<()> {
    // The listener is nonblocking; accepted sockets inherit that on
    // some platforms. Serve the connection with blocking, bounded
    // reads.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let mut conn = HttpConn::new(stream);
    loop {
        match conn.recv() {
            Ok(request) => {
                let shutting_down = state.shutdown.load(Ordering::SeqCst);
                let keep_alive = request.keep_alive() && !shutting_down;
                conn.send(&route(&request, state), keep_alive)?;
                if !keep_alive {
                    return Ok(());
                }
            }
            Err(err) => {
                // A malformed, oversized or stalled request earns its
                // diagnostic status; a clean close or idle timeout
                // earns silence. Either way the connection is done.
                if let Some(response) = err.response() {
                    let _ = conn.send(&response, false);
                }
                return match err {
                    RecvError::Io(io) => Err(io),
                    _ => Ok(()),
                };
            }
        }
    }
}

/// Routes one parsed request to its response.
fn route(request: &Request, state: &ExporterState) -> Response {
    if request.method != "GET" {
        // The head parsed fine, the method is just not allowed here —
        // a genuine 405, with the Allow header 405 requires.
        return Response::method_not_allowed("GET");
    }
    match request.path.as_str() {
        "/metrics" => {
            let body = state.metrics.lock().map(|s| s.clone()).unwrap_or_default();
            Response::bytes(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                body.into_bytes(),
            )
        }
        "/snapshot" => {
            let body = state.snapshot.lock().map(|s| s.clone()).unwrap_or_default();
            Response::json(200, body)
        }
        "/health" => Response::text(200, "ok\n"),
        _ => Response::text(404, "not found\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_published_metrics_byte_identically() {
        let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
        let snapshot = "# TYPE wsu_demands_total counter\nwsu_demands_total 42\n";
        exporter.publish_metrics(snapshot);
        let response = http_get(exporter.local_addr(), "/metrics").expect("GET /metrics");
        assert_eq!(response.status, 200);
        assert_eq!(response.body, snapshot);
        exporter.shutdown();
    }

    #[test]
    fn health_and_snapshot_routes_respond() {
        let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
        exporter.publish_snapshot("{\"demands\":7}");
        let health = http_get(exporter.local_addr(), "/health").expect("GET /health");
        assert_eq!(health.status, 200);
        assert_eq!(health.body, "ok\n");
        let snap = http_get(exporter.local_addr(), "/snapshot").expect("GET /snapshot");
        assert_eq!(snap.status, 200);
        assert_eq!(snap.body, "{\"demands\":7}");
    }

    #[test]
    fn unknown_route_is_404() {
        let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
        let response = http_get(exporter.local_addr(), "/nope").expect("GET /nope");
        assert_eq!(response.status, 404);
    }

    #[test]
    fn republishing_replaces_the_served_body() {
        let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
        exporter.publish_metrics("a 1\n");
        exporter.publish_metrics("a 2\n");
        let response = http_get(exporter.local_addr(), "/metrics").expect("GET");
        assert_eq!(response.body, "a 2\n");
    }

    #[test]
    fn query_strings_are_ignored() {
        let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind");
        exporter.publish_metrics("m 1\n");
        let response = http_get(exporter.local_addr(), "/metrics?x=1").expect("GET");
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "m 1\n");
    }
}
