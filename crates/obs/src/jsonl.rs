//! JSONL export and a minimal JSON parser.
//!
//! The exporter writes one [`TraceEvent`] JSON object per line (the
//! serializer is hand-rolled in [`crate::event`]; there is no serde in
//! this workspace). The parser exists so tests — and downstream tools —
//! can validate traces without external crates; it supports the full
//! JSON grammar the exporter emits plus arrays/nesting for generality.

use std::fs;
use std::io;
use std::path::Path;
use std::str;

use crate::event::TraceEvent;

/// Renders events as JSONL text (one object per line, trailing newline).
pub fn render_events(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.to_json());
        out.push('\n');
    }
    out
}

/// Writes events as JSONL to `path`, creating parent directories.
pub fn write_events(path: &Path, events: &[TraceEvent]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, render_events(events))
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters"));
        }
        Ok(value)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses JSONL text: one JSON document per non-empty line.
pub fn parse_jsonl(text: &str) -> Result<Vec<JsonValue>, JsonError> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(JsonValue::parse)
        .collect()
}

/// A parse failure, with a byte offset into the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset at which it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated"))?;
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_exporter_output() {
        let events = vec![
            TraceEvent::DemandDispatched {
                t: 0.0,
                demand: 1,
                releases: 2,
                mode: "parallel-reliability".into(),
            },
            TraceEvent::Adjudicated {
                t: 0.0,
                demand: 1,
                verdict: "CR".into(),
                source: None,
                responders: 2,
                response_time: 0.35,
            },
        ];
        let text = render_events(&events);
        let parsed = parse_jsonl(&text).expect("valid JSONL");
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            parsed[0].get("kind").and_then(JsonValue::as_str),
            Some("DemandDispatched")
        );
        assert_eq!(parsed[0].get("demand").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(parsed[1].get("source"), Some(&JsonValue::Null));
        assert_eq!(
            parsed[1].get("response_time").and_then(JsonValue::as_f64),
            Some(0.35)
        );
    }

    #[test]
    fn parses_nested_and_escapes() {
        let v = JsonValue::parse(r#"{"a":[1,2.5,-3e2],"b":"x\n\"y\" é","c":{"d":true}}"#)
            .expect("parse");
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Array(vec![
                JsonValue::Number(1.0),
                JsonValue::Number(2.5),
                JsonValue::Number(-300.0)
            ]))
        );
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x\n\"y\" é"));
        assert_eq!(
            v.get("c")
                .and_then(|c| c.get("d"))
                .and_then(JsonValue::as_bool),
            Some(true)
        );
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = JsonValue::parse(r#""😀""#).expect("parse");
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("01x").is_err());
        assert!(JsonValue::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn write_events_creates_directories() {
        let dir = std::env::temp_dir().join("wsu_obs_test_jsonl");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested/trace.jsonl");
        let events = vec![TraceEvent::Timeout {
            t: 1.0,
            demand: 2,
            release: 0,
            timeout: 1.5,
        }];
        write_events(&path, &events).expect("write");
        let text = fs::read_to_string(&path).expect("read back");
        assert_eq!(parse_jsonl(&text).expect("parse").len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
