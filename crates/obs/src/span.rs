//! Phase attribution, on both clocks.
//!
//! [`PhaseTimings`] measures real elapsed time: where does an
//! experiment binary actually spend its seconds? [`DemandSpan`] and
//! [`SpanProfile`] work on the **virtual** clock instead: each demand's
//! simulated response time is decomposed into middleware phases
//! (transport, detection, adjudication, Bayes update, recovery),
//! emitted as [`TraceEvent::SpanClosed`] and aggregated into a
//! per-phase profile table.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use crate::event::TraceEvent;
use crate::metrics::SharedRegistry;

/// The span phases, in attribution order.
pub const SPAN_PHASES: [&str; 5] = [
    "transport",
    "detection",
    "adjudication",
    "bayes",
    "recovery",
];

/// An ordered list of named phase durations.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimings {
    entries: Vec<(String, Duration)>,
}

impl PhaseTimings {
    /// An empty set of timings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, recording its wall-clock duration under `name`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = f();
        self.record(name, start.elapsed());
        result
    }

    /// Records an externally measured duration.
    pub fn record(&mut self, name: &str, duration: Duration) {
        self.entries.push((name.to_string(), duration));
    }

    /// The recorded `(name, duration)` pairs, in recording order.
    pub fn entries(&self) -> &[(String, Duration)] {
        &self.entries
    }

    /// Sum of all recorded durations.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|(_, d)| *d).sum()
    }

    /// Renders a small aligned report.
    pub fn render(&self) -> String {
        let mut out = String::from("Phase timings (wall clock):\n");
        for (name, duration) in &self.entries {
            out.push_str(&format!(
                "  {name:<40} {:>10.3} ms\n",
                duration.as_secs_f64() * 1e3
            ));
        }
        out.push_str(&format!(
            "  {:<40} {:>10.3} ms\n",
            "total",
            self.total().as_secs_f64() * 1e3
        ));
        out
    }

    /// Exports each phase as a `wsu_phase_seconds{phase="…"}` gauge.
    pub fn export(&self, registry: &SharedRegistry) {
        for (name, duration) in &self.entries {
            registry.set_gauge(
                "wsu_phase_seconds",
                &[("phase", name)],
                duration.as_secs_f64(),
            );
        }
    }
}

/// One demand's virtual-time cost, attributed per phase (seconds).
///
/// In the paper's timing model (eq. 8) the whole response time is
/// transport (waiting on releases) plus adjudication (`dT`); detection,
/// Bayes updates and recovery happen between demands and cost zero
/// virtual seconds. The span carries all five phases anyway, so the
/// attribution is explicit and richer timing models extend it without
/// changing the schema.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DemandSpan {
    /// Virtual time of dispatch, in seconds.
    pub t: f64,
    /// Demand sequence number.
    pub demand: u64,
    /// Seconds waiting on release responses.
    pub transport: f64,
    /// Seconds attributed to failure detection.
    pub detection: f64,
    /// Seconds attributed to adjudication (the paper's `dT`).
    pub adjudication: f64,
    /// Seconds attributed to the Bayesian confidence update.
    pub bayes: f64,
    /// Seconds attributed to recovery actions.
    pub recovery: f64,
}

impl DemandSpan {
    /// Total virtual-time cost of the demand.
    pub fn total(&self) -> f64 {
        self.transport + self.detection + self.adjudication + self.bayes + self.recovery
    }

    /// The phase values in [`SPAN_PHASES`] order.
    pub fn phases(&self) -> [f64; 5] {
        [
            self.transport,
            self.detection,
            self.adjudication,
            self.bayes,
            self.recovery,
        ]
    }

    /// The matching [`TraceEvent::SpanClosed`]. All-numeric payload, so
    /// this does not allocate.
    pub fn to_event(&self) -> TraceEvent {
        TraceEvent::SpanClosed {
            t: self.t,
            demand: self.demand,
            transport: self.transport,
            detection: self.detection,
            adjudication: self.adjudication,
            bayes: self.bayes,
            recovery: self.recovery,
        }
    }
}

/// Aggregates [`DemandSpan`]s into a per-phase profile: count, total
/// and mean virtual seconds and each phase's share of the whole.
///
/// Fixed-size accumulators, so [`record`](SpanProfile::record) is
/// allocation-free on the per-demand path, and profiles from
/// replication shards [`merge`](SpanProfile::merge) by addition.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanProfile {
    demands: u64,
    totals: [f64; 5],
}

impl SpanProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one demand's span in. Allocation-free.
    pub fn record(&mut self, span: &DemandSpan) {
        self.demands += 1;
        for (acc, v) in self.totals.iter_mut().zip(span.phases()) {
            *acc += v;
        }
    }

    /// Number of demands recorded.
    pub fn demands(&self) -> u64 {
        self.demands
    }

    /// Total virtual seconds attributed to `phase` (a [`SPAN_PHASES`]
    /// name), or `None` for an unknown phase.
    pub fn phase_total(&self, phase: &str) -> Option<f64> {
        SPAN_PHASES
            .iter()
            .position(|&p| p == phase)
            .map(|i| self.totals[i])
    }

    /// Total virtual seconds across all phases.
    pub fn total(&self) -> f64 {
        self.totals.iter().sum()
    }

    /// Adds another profile's mass (shard folding).
    pub fn merge(&mut self, other: &SpanProfile) {
        self.demands += other.demands;
        for (acc, v) in self.totals.iter_mut().zip(other.totals) {
            *acc += v;
        }
    }

    /// Renders the per-phase profile table.
    pub fn render(&self) -> String {
        let mut out = String::from("Span profile (virtual time):\n");
        let grand = self.total();
        for (name, total) in SPAN_PHASES.iter().zip(self.totals) {
            let mean = if self.demands == 0 {
                0.0
            } else {
                total / self.demands as f64
            };
            let share = if grand > 0.0 {
                total / grand * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {name:<14} {total:>12.3} s  {mean:>10.6} s/demand  {share:>6.2} %"
            );
        }
        let _ = writeln!(
            out,
            "  {:<14} {grand:>12.3} s  over {} demands",
            "total", self.demands
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_in_order() {
        let mut spans = PhaseTimings::new();
        let x = spans.time("first", || 41 + 1);
        assert_eq!(x, 42);
        spans.record("second", Duration::from_millis(5));
        assert_eq!(spans.entries().len(), 2);
        assert_eq!(spans.entries()[0].0, "first");
        assert!(spans.total() >= Duration::from_millis(5));
        assert!(spans.render().contains("second"));
    }

    #[test]
    fn demand_span_totals_and_event_round_trip() {
        let span = DemandSpan {
            t: 10.0,
            demand: 7,
            transport: 0.6,
            adjudication: 0.1,
            ..DemandSpan::default()
        };
        assert!((span.total() - 0.7).abs() < 1e-12);
        let event = span.to_event();
        assert_eq!(event.kind(), "SpanClosed");
        assert_eq!(event.virtual_time(), 10.0);
        assert_eq!(event.demand(), 7);
        let json = event.to_json();
        assert!(json.contains("\"transport\":0.6"), "{json}");
        assert!(json.contains("\"total\":0.7"), "{json}");
    }

    #[test]
    fn span_profile_aggregates_and_merges() {
        let mut a = SpanProfile::new();
        let mut b = SpanProfile::new();
        let span = DemandSpan {
            transport: 0.5,
            adjudication: 0.1,
            ..DemandSpan::default()
        };
        a.record(&span);
        b.record(&span);
        b.record(&span);
        a.merge(&b);
        assert_eq!(a.demands(), 3);
        assert!((a.phase_total("transport").unwrap() - 1.5).abs() < 1e-12);
        assert!((a.phase_total("adjudication").unwrap() - 0.3).abs() < 1e-12);
        assert_eq!(a.phase_total("warp"), None);
        assert!((a.total() - 1.8).abs() < 1e-12);
        let table = a.render();
        assert!(table.contains("transport"), "{table}");
        assert!(table.contains("over 3 demands"), "{table}");
    }

    #[test]
    fn export_writes_gauges() {
        let mut spans = PhaseTimings::new();
        spans.record("run", Duration::from_secs(2));
        let registry = SharedRegistry::new();
        spans.export(&registry);
        assert_eq!(
            registry.with(|r| r.gauge("wsu_phase_seconds", &[("phase", "run")])),
            Some(2.0)
        );
    }
}
