//! Wall-clock phase timers for profiling experiment stages.
//!
//! Unlike [`crate::event`] (virtual time), these measure real elapsed
//! time: where does an experiment binary actually spend its seconds?

use std::time::{Duration, Instant};

use crate::metrics::SharedRegistry;

/// An ordered list of named phase durations.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimings {
    entries: Vec<(String, Duration)>,
}

impl PhaseTimings {
    /// An empty set of timings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, recording its wall-clock duration under `name`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = f();
        self.record(name, start.elapsed());
        result
    }

    /// Records an externally measured duration.
    pub fn record(&mut self, name: &str, duration: Duration) {
        self.entries.push((name.to_string(), duration));
    }

    /// The recorded `(name, duration)` pairs, in recording order.
    pub fn entries(&self) -> &[(String, Duration)] {
        &self.entries
    }

    /// Sum of all recorded durations.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|(_, d)| *d).sum()
    }

    /// Renders a small aligned report.
    pub fn render(&self) -> String {
        let mut out = String::from("Phase timings (wall clock):\n");
        for (name, duration) in &self.entries {
            out.push_str(&format!(
                "  {name:<40} {:>10.3} ms\n",
                duration.as_secs_f64() * 1e3
            ));
        }
        out.push_str(&format!(
            "  {:<40} {:>10.3} ms\n",
            "total",
            self.total().as_secs_f64() * 1e3
        ));
        out
    }

    /// Exports each phase as a `wsu_phase_seconds{phase="…"}` gauge.
    pub fn export(&self, registry: &SharedRegistry) {
        for (name, duration) in &self.entries {
            registry.set_gauge(
                "wsu_phase_seconds",
                &[("phase", name)],
                duration.as_secs_f64(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_in_order() {
        let mut spans = PhaseTimings::new();
        let x = spans.time("first", || 41 + 1);
        assert_eq!(x, 42);
        spans.record("second", Duration::from_millis(5));
        assert_eq!(spans.entries().len(), 2);
        assert_eq!(spans.entries()[0].0, "first");
        assert!(spans.total() >= Duration::from_millis(5));
        assert!(spans.render().contains("second"));
    }

    #[test]
    fn export_writes_gauges() {
        let mut spans = PhaseTimings::new();
        spans.record("run", Duration::from_secs(2));
        let registry = SharedRegistry::new();
        spans.export(&registry);
        assert_eq!(
            registry.with(|r| r.gauge("wsu_phase_seconds", &[("phase", "run")])),
            Some(2.0)
        );
    }
}
