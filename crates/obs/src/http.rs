//! Hand-rolled HTTP/1.1 framing over `std::net` — the workspace's
//! shared network layer.
//!
//! The PR 6 metrics exporter carried its own ad-hoc request reading
//! (one `read` syscall per byte, no `Content-Length` handling, `405`
//! for malformed heads). This module promotes that code into a proper
//! reusable layer with correct head/body framing, used by both sides
//! of every HTTP conversation in the workspace:
//!
//! * **server** — [`HttpConn::recv`] reads one framed [`Request`]
//!   (bounded head, `Content-Length` body, keep-alive bookkeeping) and
//!   [`HttpConn::send`] writes a framed [`Response`];
//! * **client** — [`HttpClient`] drives persistent (keep-alive)
//!   connections for the load generator, and [`http_get`] stays the
//!   one-shot scrape helper used by tests, `wsu-httpget` and CI.
//!
//! Everything is plain `std`; the connection type is generic over
//! `Read + Write` so the framing logic is unit-testable on in-memory
//! streams.
//!
//! ## Error semantics
//!
//! [`RecvError`] distinguishes the cases the old exporter conflated:
//! a clean close between requests ([`RecvError::Closed`], no response
//! owed), a malformed or truncated head (`400 Bad Request`), an
//! oversized head (`431 Request Header Fields Too Large`), an
//! oversized declared body (`413 Content Too Large`) and a read
//! timeout mid-request (`408 Request Timeout`). Method mismatches are
//! the *router's* job — a syntactically valid head with a non-allowed
//! method earns `405` with an `Allow` header, never `400`.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Size bounds applied while reading a request or response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpConfig {
    /// Maximum bytes of request/response head (start line + headers +
    /// terminator). Longer heads are rejected with
    /// [`RecvError::HeadTooLarge`].
    pub max_head_bytes: usize,
    /// Maximum accepted `Content-Length`. Larger declared bodies are
    /// rejected with [`RecvError::BodyTooLarge`].
    pub max_body_bytes: usize,
}

impl Default for HttpConfig {
    /// 8 KiB heads, 256 KiB bodies — generous for every client this
    /// workspace speaks to.
    fn default() -> Self {
        HttpConfig {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 256 * 1024,
        }
    }
}

/// HTTP version of a parsed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpVersion {
    /// `HTTP/1.0` — connections close by default.
    Http10,
    /// `HTTP/1.1` — connections persist by default.
    Http11,
}

/// One parsed request, with its body fully read off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// The path component of the request target (query stripped).
    pub path: String,
    /// The query string, without the `?`, if one was present.
    pub query: Option<String>,
    /// Protocol version.
    pub version: HttpVersion,
    /// Header `(name, value)` pairs in arrival order, names as sent.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless a `Content-Length` said
    /// otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name`, compared case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should persist after this request:
    /// HTTP/1.1 unless `Connection: close`, HTTP/1.0 only with
    /// `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        let conn = self.header("connection").unwrap_or("");
        match self.version {
            HttpVersion::Http11 => !token_list_contains(conn, "close"),
            HttpVersion::Http10 => token_list_contains(conn, "keep-alive"),
        }
    }
}

/// Case-insensitive membership test over a comma-separated token list.
fn token_list_contains(list: &str, token: &str) -> bool {
    list.split(',')
        .any(|t| t.trim().eq_ignore_ascii_case(token))
}

/// Why [`HttpConn::recv`] (or a client read) failed.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection cleanly before sending any byte
    /// of a request — normal end of a keep-alive conversation; no
    /// response is owed.
    Closed,
    /// The read timed out. `partial` is `true` if some bytes of a
    /// request had already arrived (a slow-loris-style stall mid-head
    /// or mid-body), `false` on an idle keep-alive connection.
    TimedOut {
        /// Whether the timeout interrupted a partially received
        /// request (as opposed to an idle connection).
        partial: bool,
    },
    /// The head exceeded [`HttpConfig::max_head_bytes`].
    HeadTooLarge,
    /// The declared `Content-Length` exceeded
    /// [`HttpConfig::max_body_bytes`].
    BodyTooLarge {
        /// The length the peer declared.
        declared: u64,
    },
    /// The head (or body framing) was syntactically invalid, including
    /// a connection that closed mid-request.
    Malformed(&'static str),
    /// A transport error other than a timeout.
    Io(io::Error),
}

impl RecvError {
    /// The error response a server should answer with, if any.
    /// [`RecvError::Closed`] and idle timeouts owe no response.
    pub fn response(&self) -> Option<Response> {
        match self {
            RecvError::Closed | RecvError::TimedOut { partial: false } => None,
            RecvError::TimedOut { partial: true } => Some(Response::text(408, "request timeout\n")),
            RecvError::HeadTooLarge => Some(Response::text(431, "request head too large\n")),
            RecvError::BodyTooLarge { .. } => Some(Response::text(413, "request body too large\n")),
            RecvError::Malformed(why) => Some(Response::text(400, format!("bad request: {why}\n"))),
            RecvError::Io(_) => None,
        }
    }
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => write!(f, "connection closed"),
            RecvError::TimedOut { partial: true } => write!(f, "timed out mid-request"),
            RecvError::TimedOut { partial: false } => write!(f, "timed out while idle"),
            RecvError::HeadTooLarge => write!(f, "request head too large"),
            RecvError::BodyTooLarge { declared } => {
                write!(f, "declared body of {declared} bytes too large")
            }
            RecvError::Malformed(why) => write!(f, "malformed request: {why}"),
            RecvError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for RecvError {}

impl From<RecvError> for io::Error {
    fn from(err: RecvError) -> io::Error {
        match err {
            RecvError::Io(io) => io,
            RecvError::Closed => io::Error::new(io::ErrorKind::UnexpectedEof, err.to_string()),
            RecvError::TimedOut { .. } => io::Error::new(io::ErrorKind::TimedOut, err.to_string()),
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Maps a transport error to the matching [`RecvError`], treating both
/// `WouldBlock` (POSIX read timeout) and `TimedOut` as timeouts.
fn classify_io(err: io::Error, partial: bool) -> RecvError {
    match err.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => RecvError::TimedOut { partial },
        _ => RecvError::Io(err),
    }
}

/// The standard reason phrase for the status codes this workspace
/// emits (anything else renders as `Status`).
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// A response about to be written by [`HttpConn::send`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Numeric status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Extra headers (e.g. `Allow` on a 405), written verbatim.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json".into(),
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A response with an explicit content type and byte body.
    pub fn bytes(status: u16, content_type: &str, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: content_type.into(),
            headers: Vec::new(),
            body,
        }
    }

    /// Adds an extra header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The `405 Method Not Allowed` response with its mandatory
    /// `Allow` header.
    pub fn method_not_allowed(allow: &str) -> Response {
        Response::text(405, "method not allowed\n").with_header("Allow", allow)
    }
}

/// A buffered HTTP/1.1 connection over any `Read + Write` stream.
///
/// Reads go through an internal buffer (one `read` syscall per chunk,
/// not per byte — the old exporter's `read_head` read bytes one
/// syscall at a time); bytes past the current request's frame stay
/// buffered for the next [`recv`](HttpConn::recv), so pipelined
/// requests and keep-alive reuse both work.
#[derive(Debug)]
pub struct HttpConn<S> {
    stream: S,
    config: HttpConfig,
    /// Buffered unconsumed bytes: `buf[start..end]`.
    buf: Vec<u8>,
    start: usize,
    end: usize,
    /// Reusable response/request serialisation buffer.
    out: Vec<u8>,
}

/// Read chunk size; also the growth step of the buffered window.
const READ_CHUNK: usize = 4096;

impl<S: Read + Write> HttpConn<S> {
    /// Wraps `stream` with the default [`HttpConfig`].
    pub fn new(stream: S) -> HttpConn<S> {
        HttpConn::with_config(stream, HttpConfig::default())
    }

    /// Wraps `stream` with explicit size bounds.
    pub fn with_config(stream: S, config: HttpConfig) -> HttpConn<S> {
        HttpConn {
            stream,
            config,
            buf: Vec::new(),
            start: 0,
            end: 0,
            out: Vec::new(),
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Unconsumed buffered bytes.
    fn pending(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Reads one more chunk from the stream into the buffer. Returns
    /// the number of bytes read (0 on EOF).
    fn fill(&mut self) -> io::Result<usize> {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
        if self.buf.len() < self.end + READ_CHUNK {
            self.buf.resize(self.end + READ_CHUNK, 0);
        }
        let n = self.stream.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Consumes and returns the next `n` buffered bytes (caller must
    /// know they are present).
    fn take(&mut self, n: usize) -> &[u8] {
        let slice = &self.buf[self.start..self.start + n];
        self.start += n;
        slice
    }

    /// Reads until `pending()` holds a complete head (terminated by
    /// `\r\n\r\n`, or the lenient bare `\n\n`), returning the head
    /// length *including* the terminator.
    fn read_head(&mut self) -> Result<usize, RecvError> {
        let mut scanned = 0;
        loop {
            if let Some(end) = find_head_end(self.pending(), &mut scanned) {
                if end > self.config.max_head_bytes {
                    return Err(RecvError::HeadTooLarge);
                }
                return Ok(end);
            }
            if self.pending().len() > self.config.max_head_bytes {
                return Err(RecvError::HeadTooLarge);
            }
            let had_bytes = !self.pending().is_empty();
            match self.fill() {
                Ok(0) if had_bytes => return Err(RecvError::Malformed("truncated request head")),
                Ok(0) => return Err(RecvError::Closed),
                Ok(_) => {}
                Err(e) => return Err(classify_io(e, had_bytes)),
            }
        }
    }

    /// Reads exactly `len` body bytes (the head has been consumed).
    fn read_body(&mut self, len: usize) -> Result<Vec<u8>, RecvError> {
        let mut body = Vec::with_capacity(len);
        while body.len() < len {
            if self.pending().is_empty() {
                match self.fill() {
                    Ok(0) => return Err(RecvError::Malformed("connection closed mid-body")),
                    Ok(_) => {}
                    Err(e) => return Err(classify_io(e, true)),
                }
            }
            let want = (len - body.len()).min(self.pending().len());
            body.extend_from_slice(self.take(want));
        }
        Ok(body)
    }

    /// Receives one framed request.
    ///
    /// # Errors
    ///
    /// See [`RecvError`]; [`RecvError::Closed`] is the normal end of a
    /// keep-alive conversation.
    pub fn recv(&mut self) -> Result<Request, RecvError> {
        let head_len = self.read_head()?;
        let parsed = {
            let head = &self.buf[self.start..self.start + head_len];
            parse_request_head(head)
        };
        self.start += head_len;
        let mut request = parsed?;
        let content_length = match request.header("content-length") {
            None => 0u64,
            Some(raw) => raw
                .trim()
                .parse::<u64>()
                .map_err(|_| RecvError::Malformed("unparsable content-length"))?,
        };
        if request
            .header("transfer-encoding")
            .is_some_and(|v| !v.trim().is_empty())
        {
            return Err(RecvError::Malformed("transfer-encoding not supported"));
        }
        if content_length > self.config.max_body_bytes as u64 {
            return Err(RecvError::BodyTooLarge {
                declared: content_length,
            });
        }
        if content_length > 0 {
            request.body = self.read_body(content_length as usize)?;
        }
        Ok(request)
    }

    /// Writes a framed response. `keep_alive` selects the `Connection`
    /// header; the `Content-Length` is always explicit.
    pub fn send(&mut self, response: &Response, keep_alive: bool) -> io::Result<()> {
        self.out.clear();
        let status = response.status;
        let reason = reason_phrase(status);
        self.out
            .extend_from_slice(format!("HTTP/1.1 {status} {reason}\r\n").as_bytes());
        self.out
            .extend_from_slice(format!("Content-Type: {}\r\n", response.content_type).as_bytes());
        self.out
            .extend_from_slice(format!("Content-Length: {}\r\n", response.body.len()).as_bytes());
        for (name, value) in &response.headers {
            self.out
                .extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        let connection = if keep_alive { "keep-alive" } else { "close" };
        self.out
            .extend_from_slice(format!("Connection: {connection}\r\n\r\n").as_bytes());
        self.out.extend_from_slice(&response.body);
        self.stream.write_all(&self.out)?;
        self.stream.flush()
    }

    /// Writes a framed request (client side). An empty `body` writes
    /// no `Content-Length`; `host` fills the mandatory `Host` header.
    pub fn send_request(
        &mut self,
        method: &str,
        path: &str,
        host: &str,
        body: &[u8],
        keep_alive: bool,
    ) -> io::Result<()> {
        self.out.clear();
        self.out
            .extend_from_slice(format!("{method} {path} HTTP/1.1\r\nHost: {host}\r\n").as_bytes());
        if !body.is_empty() || method == "POST" || method == "PUT" {
            self.out
                .extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
        }
        let connection = if keep_alive { "keep-alive" } else { "close" };
        self.out
            .extend_from_slice(format!("Connection: {connection}\r\n\r\n").as_bytes());
        self.out.extend_from_slice(body);
        self.stream.write_all(&self.out)?;
        self.stream.flush()
    }

    /// Receives one framed response (client side): status line,
    /// headers, then a `Content-Length` body — or, when no length is
    /// declared, everything until the server closes the connection.
    pub fn recv_response(&mut self) -> Result<HttpResponse, RecvError> {
        let head_len = self.read_head()?;
        let parsed = {
            let head = &self.buf[self.start..self.start + head_len];
            parse_response_head(head)
        };
        self.start += head_len;
        let (status, headers) = parsed?;
        let content_length = headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
            .map(|(_, v)| {
                v.trim()
                    .parse::<u64>()
                    .map_err(|_| RecvError::Malformed("unparsable content-length"))
            })
            .transpose()?;
        let bytes = match content_length {
            Some(len) if len > self.config.max_body_bytes as u64 => {
                return Err(RecvError::BodyTooLarge { declared: len })
            }
            Some(len) => self.read_body(len as usize)?,
            None => {
                // Legacy framing: the body runs until connection close.
                let mut bytes = Vec::from(self.pending());
                self.start = self.end;
                match self.stream.read_to_end(&mut bytes) {
                    Ok(_) => {}
                    Err(e) => return Err(classify_io(e, true)),
                }
                bytes
            }
        };
        let keep_alive = match content_length {
            None => false,
            Some(_) => !headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case("connection"))
                .is_some_and(|(_, v)| token_list_contains(v, "close")),
        };
        Ok(HttpResponse {
            status,
            body: String::from_utf8_lossy(&bytes).into_owned(),
            bytes,
            keep_alive,
        })
    }
}

/// Locates the end of the head in `pending`, scanning only bytes not
/// already examined (`scanned` persists across refills). Accepts
/// `\r\n\r\n` and the lenient bare `\n\n`; returns the index one past
/// the terminator.
fn find_head_end(pending: &[u8], scanned: &mut usize) -> Option<usize> {
    // Re-scan up to 3 bytes back: a terminator may straddle a refill.
    let from = scanned.saturating_sub(3);
    for i in from..pending.len() {
        if pending[i] == b'\n' {
            let at_crlf2 = i >= 3 && &pending[i - 3..=i] == b"\r\n\r\n";
            let at_lf2 = i >= 1 && pending[i - 1] == b'\n';
            if at_crlf2 || at_lf2 {
                *scanned = 0;
                return Some(i + 1);
            }
        }
    }
    *scanned = pending.len();
    None
}

/// Splits a head into its lines, tolerating both `\r\n` and bare `\n`.
fn head_lines(head: &str) -> impl Iterator<Item = &str> {
    head.split('\n')
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .filter(|l| !l.is_empty())
}

/// Parses `Name: value` header lines (everything after the first).
fn parse_headers<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<Vec<(String, String)>, RecvError> {
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or(RecvError::Malformed("header line without a colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(RecvError::Malformed("invalid header name"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Ok(headers)
}

/// Parses a request head (start line + headers, terminator included).
fn parse_request_head(head: &[u8]) -> Result<Request, RecvError> {
    let text =
        std::str::from_utf8(head).map_err(|_| RecvError::Malformed("non-UTF-8 request head"))?;
    let mut lines = head_lines(text);
    let start = lines.next().ok_or(RecvError::Malformed("empty head"))?;
    let mut parts = start.split(' ').filter(|p| !p.is_empty());
    let method = parts.next().ok_or(RecvError::Malformed("missing method"))?;
    let target = parts
        .next()
        .ok_or(RecvError::Malformed("missing request target"))?;
    let version = match parts.next() {
        Some("HTTP/1.1") => HttpVersion::Http11,
        Some("HTTP/1.0") => HttpVersion::Http10,
        Some(_) => return Err(RecvError::Malformed("unsupported protocol version")),
        None => return Err(RecvError::Malformed("missing protocol version")),
    };
    if parts.next().is_some() {
        return Err(RecvError::Malformed("extra tokens in request line"));
    }
    if !method
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'-')
        || method.is_empty()
    {
        return Err(RecvError::Malformed("invalid method"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q.to_string())),
        None => (target, None),
    };
    if !path.starts_with('/') && path != "*" {
        return Err(RecvError::Malformed("request target must be absolute"));
    }
    let headers = parse_headers(lines)?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        version,
        headers,
        body: Vec::new(),
    })
}

/// Parses a response head into `(status, headers)`.
fn parse_response_head(head: &[u8]) -> Result<(u16, Vec<(String, String)>), RecvError> {
    let text =
        std::str::from_utf8(head).map_err(|_| RecvError::Malformed("non-UTF-8 response head"))?;
    let mut lines = head_lines(text);
    let start = lines.next().ok_or(RecvError::Malformed("empty head"))?;
    let mut parts = start.split(' ').filter(|p| !p.is_empty());
    match parts.next() {
        Some(proto) if proto.starts_with("HTTP/") => {}
        _ => return Err(RecvError::Malformed("malformed status line")),
    }
    let status = parts
        .next()
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or(RecvError::Malformed("malformed status code"))?;
    let headers = parse_headers(lines)?;
    Ok((status, headers))
}

/// A parsed HTTP response, as returned by [`http_get`] and
/// [`HttpClient::request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// The numeric status code (e.g. 200).
    pub status: u16,
    /// The response body decoded as text (lossily — non-UTF-8 bytes
    /// become replacement characters; the exact bytes are in
    /// [`bytes`](HttpResponse::bytes)).
    pub body: String,
    /// The exact response body bytes.
    pub bytes: Vec<u8>,
    /// Whether the connection may serve another request.
    pub keep_alive: bool,
}

/// A persistent (keep-alive) HTTP/1.1 client connection over
/// `std::net::TcpStream` — what the closed-loop load generator drives.
#[derive(Debug)]
pub struct HttpClient {
    conn: HttpConn<TcpStream>,
    host: String,
}

impl HttpClient {
    /// Connects to `addr` with `timeout` applied to connect, read and
    /// write. `TCP_NODELAY` is set: request/response pairs are tiny
    /// and latency-sensitive.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<HttpClient> {
        let addr = resolve(addr)?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            conn: HttpConn::new(stream),
            host: addr.to_string(),
        })
    }

    /// The peer address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.conn.get_ref().peer_addr()
    }

    /// The local (client-side) address of the connection.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.conn.get_ref().local_addr()
    }

    /// Performs one request on the persistent connection.
    ///
    /// # Errors
    ///
    /// Any [`RecvError`]; after an error the connection should be
    /// dropped and re-established.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<HttpResponse, RecvError> {
        self.conn
            .send_request(method, path, &self.host, body, true)
            .map_err(|e| classify_io(e, false))?;
        self.conn.recv_response()
    }
}

/// Resolves `addr` to its first socket address.
fn resolve(addr: impl ToSocketAddrs) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))
}

/// Fetches `path` from `addr` with one blocking HTTP/1.1 GET — the
/// hand-rolled client used by tests, `wsu-httpget` and the CI exporter
/// smoke step.
///
/// The response body is read as **bytes** with `Content-Length`
/// framing when the server declares one (falling back to
/// read-until-close), so non-UTF-8 bodies are returned rather than
/// rejected and a keep-alive server cannot stall the read.
///
/// # Errors
///
/// Connection failures, timeouts and malformed response heads.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> io::Result<HttpResponse> {
    let addr = resolve(addr)?;
    let timeout = Duration::from_secs(5);
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let mut conn = HttpConn::new(stream);
    conn.send_request("GET", path, &addr.to_string(), &[], false)?;
    Ok(conn.recv_response()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory duplex stream: reads from `input`, writes to
    /// `output`.
    struct MemStream {
        input: io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl MemStream {
        fn new(input: &[u8]) -> MemStream {
            MemStream {
                input: io::Cursor::new(input.to_vec()),
                output: Vec::new(),
            }
        }
    }

    impl Read for MemStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for MemStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn recv_one(raw: &[u8]) -> Result<Request, RecvError> {
        HttpConn::new(MemStream::new(raw)).recv()
    }

    #[test]
    fn parses_a_simple_get() {
        let req = recv_one(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query, None);
        assert_eq!(req.version, HttpVersion::Http11);
        assert!(req.keep_alive());
        assert!(req.body.is_empty());
    }

    #[test]
    fn splits_query_from_path() {
        let req = recv_one(b"GET /metrics?x=1&y=2 HTTP/1.1\r\n\r\n").expect("parse");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query.as_deref(), Some("x=1&y=2"));
    }

    #[test]
    fn reads_content_length_body() {
        let req =
            recv_one(b"POST /demand HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").expect("parse");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn keeps_pipelined_bytes_for_the_next_request() {
        let raw =
            b"POST /demand HTTP/1.1\r\nContent-Length: 2\r\n\r\nabGET /health HTTP/1.1\r\n\r\n";
        let mut conn = HttpConn::new(MemStream::new(raw));
        let first = conn.recv().expect("first");
        assert_eq!(first.body, b"ab");
        let second = conn.recv().expect("second");
        assert_eq!(second.path, "/health");
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let req = recv_one(b"GET / HTTP/1.1\r\nX-Thing:  v  \r\n\r\n").expect("parse");
        assert_eq!(req.header("x-thing"), Some("v"));
        assert_eq!(req.header("X-THING"), Some("v"));
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let req = recv_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parse");
        assert!(!req.keep_alive());
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = recv_one(b"GET / HTTP/1.0\r\n\r\n").expect("parse");
        assert!(!req.keep_alive());
        let req = recv_one(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").expect("parse");
        assert!(req.keep_alive());
    }

    #[test]
    fn bare_lf_heads_are_tolerated() {
        let req = recv_one(b"GET /health HTTP/1.1\nHost: x\n\n").expect("parse");
        assert_eq!(req.path, "/health");
    }

    #[test]
    fn empty_stream_is_closed_not_malformed() {
        assert!(matches!(recv_one(b""), Err(RecvError::Closed)));
    }

    #[test]
    fn truncated_head_is_malformed() {
        assert!(matches!(
            recv_one(b"GET /metr"),
            Err(RecvError::Malformed(_))
        ));
    }

    #[test]
    fn garbage_request_line_is_malformed() {
        assert!(matches!(
            recv_one(b"\r\n\r\n"),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            recv_one(b"GET\r\n\r\n"),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            recv_one(b"GET /x HTTP/2\r\n\r\n"),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            recv_one(b"GET relative HTTP/1.1\r\n\r\n"),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            recv_one(b"GET /x HTTP/1.1 extra\r\n\r\n"),
            Err(RecvError::Malformed(_))
        ));
    }

    #[test]
    fn bad_content_length_is_malformed() {
        assert!(matches!(
            recv_one(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(RecvError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_body_is_malformed() {
        assert!(matches!(
            recv_one(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(RecvError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut raw = Vec::from(&b"GET / HTTP/1.1\r\nX-Pad: "[..]);
        raw.extend(std::iter::repeat_n(b'a', 9000));
        raw.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(recv_one(&raw), Err(RecvError::HeadTooLarge)));
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert!(matches!(
            recv_one(raw),
            Err(RecvError::BodyTooLarge { declared: 99999999 })
        ));
    }

    #[test]
    fn head_terminator_straddling_read_chunks_is_found() {
        // Pad so the "\r\n\r\n" terminator straddles the 4096-byte
        // chunk boundary.
        for pad in [4093, 4094, 4095, 4096] {
            let mut raw = Vec::from(&b"GET / HTTP/1.1\r\nX-Pad: "[..]);
            while raw.len() < pad {
                raw.push(b'a');
            }
            raw.extend_from_slice(b"\r\n\r\n");
            let req = recv_one(&raw).expect("parse");
            assert_eq!(req.path, "/");
        }
    }

    #[test]
    fn response_send_includes_framing_headers() {
        let mut conn = HttpConn::new(MemStream::new(b""));
        conn.send(&Response::method_not_allowed("GET"), false)
            .expect("send");
        let written = String::from_utf8(conn.stream.output.clone()).unwrap();
        assert!(written.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        assert!(written.contains("Allow: GET\r\n"));
        assert!(written.contains("Content-Length: 19\r\n"));
        assert!(written.contains("Connection: close\r\n"));
    }

    #[test]
    fn client_parses_content_length_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabctrailing-junk";
        let resp = HttpConn::new(MemStream::new(raw))
            .recv_response()
            .expect("parse");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "abc");
        assert!(resp.keep_alive);
    }

    #[test]
    fn client_reads_to_eof_without_content_length() {
        let raw = b"HTTP/1.1 200 OK\r\n\r\nwhole body until close";
        let resp = HttpConn::new(MemStream::new(raw))
            .recv_response()
            .expect("parse");
        assert_eq!(resp.body, "whole body until close");
        assert!(!resp.keep_alive);
    }

    #[test]
    fn client_keeps_non_utf8_bytes() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\n\xff\xfe\x01\x02";
        let resp = HttpConn::new(MemStream::new(raw))
            .recv_response()
            .expect("parse");
        assert_eq!(resp.bytes, vec![0xff, 0xfe, 0x01, 0x02]);
        assert_eq!(resp.body.chars().next(), Some('\u{fffd}'));
    }

    #[test]
    fn recv_error_maps_to_status_codes() {
        assert!(RecvError::Closed.response().is_none());
        assert!(RecvError::TimedOut { partial: false }.response().is_none());
        assert_eq!(
            RecvError::TimedOut { partial: true }
                .response()
                .map(|r| r.status),
            Some(408)
        );
        assert_eq!(
            RecvError::HeadTooLarge.response().map(|r| r.status),
            Some(431)
        );
        assert_eq!(
            RecvError::BodyTooLarge { declared: 1 }
                .response()
                .map(|r| r.status),
            Some(413)
        );
        assert_eq!(
            RecvError::Malformed("x").response().map(|r| r.status),
            Some(400)
        );
    }
}
