//! Benchmarks of the extension features: composite invocation, the
//! capacity study's event-driven queueing simulation, the rollback
//! assessment and the single-release tracker.

use std::hint::black_box;
use wsu_bayes::beta::ScaledBeta;
use wsu_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsu_core::composite::CompositeService;
use wsu_core::single_release::SingleReleaseTracker;
use wsu_experiments::capacity::{run_capacity, CapacityConfig, Dispatch};
use wsu_experiments::DEFAULT_SEED;
use wsu_simcore::dist::DelayModel;
use wsu_simcore::rng::StreamRng;
use wsu_workload::outcomes::CorrelatedOutcomes;
use wsu_workload::runs::RunSpec;
use wsu_workload::timing::ExecTimeModel;
use wsu_wstack::endpoint::SyntheticService;
use wsu_wstack::message::Envelope;
use wsu_wstack::outcome::OutcomeProfile;

fn composite_invoke(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/composite_invoke");
    for parts in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(parts), &parts, |b, &n| {
            let mut builder = CompositeService::builder("Shop");
            for i in 0..n {
                builder = builder.component(
                    format!("component-{i}"),
                    SyntheticService::builder("C", "1.0")
                        .outcomes(OutcomeProfile::new(0.99, 0.005, 0.005))
                        .exec_time(DelayModel::constant(0.01))
                        .build(),
                );
            }
            let mut composite = builder.build();
            let request = Envelope::request("checkout");
            let mut rng = StreamRng::from_seed(1);
            b.iter(|| black_box(composite.invoke(&request, &mut rng)));
        });
    }
    group.finish();
}

fn capacity_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/capacity_cell_2k");
    group.sample_size(10);
    let gen = CorrelatedOutcomes::from_run(&RunSpec::run2());
    for dispatch in [Dispatch::Parallel, Dispatch::Sequential] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{dispatch:?}")),
            &dispatch,
            |b, &d| {
                b.iter(|| {
                    black_box(run_capacity(
                        d,
                        &gen,
                        ExecTimeModel::calibrated(),
                        CapacityConfig {
                            arrival_rate: 0.5,
                            demands: 2_000,
                            timeout: 3.0,
                            adjudication_delay: 0.1,
                        },
                        DEFAULT_SEED,
                    ))
                });
            },
        );
    }
    group.finish();
}

fn single_release_tracker(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/single_release");
    group.bench_function("observe_1k_plus_report", |b| {
        b.iter(|| {
            let mut tracker =
                SingleReleaseTracker::new(ScaledBeta::new(1.0, 9.0, 0.05).unwrap(), 256);
            for i in 0..1_000u32 {
                tracker.observe("1.0", i % 400 == 0);
            }
            black_box(tracker.reported_confidence(1e-2))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    composite_invoke,
    capacity_cell,
    single_release_tracker
);
criterion_main!(benches);
