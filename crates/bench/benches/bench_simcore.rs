//! Micro-benchmarks of the simulation substrate: RNG streams, event
//! queue, a closed-loop engine run, and the metric-handle fast path the
//! demand loop writes through (string-keyed lookup vs pre-resolved id).

use std::hint::black_box;
use wsu_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsu_obs::metrics::MetricsRegistry;
use wsu_simcore::dist::Exponential;
use wsu_simcore::engine::{Engine, Handler};
use wsu_simcore::queue::EventQueue;
use wsu_simcore::rng::StreamRng;
use wsu_simcore::time::{SimDuration, SimTime};

fn rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("simcore/rng");
    group.bench_function("next_u64", |b| {
        let mut rng = StreamRng::from_seed(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    group.bench_function("exponential_sample", |b| {
        let mut rng = StreamRng::from_seed(2);
        let exp = Exponential::with_mean(0.7);
        b.iter(|| black_box(exp.sample(&mut rng)));
    });
    group.bench_function("pick_weighted_3", |b| {
        let mut rng = StreamRng::from_seed(3);
        let weights = [0.7, 0.15, 0.15];
        b.iter(|| black_box(rng.pick_weighted(&weights)));
    });
    group.finish();
}

fn queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("simcore/queue");
    for n in [1_000u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                let mut rng = StreamRng::from_seed(4);
                for i in 0..n {
                    q.push(SimTime::from_secs(rng.next_f64() * 100.0), i);
                }
                let mut sum = 0u64;
                while let Some((_, e)) = q.pop() {
                    sum += e;
                }
                black_box(sum)
            });
        });
    }
    group.finish();
}

struct Loop {
    remaining: u64,
}

impl Handler<()> for Loop {
    fn handle(&mut self, engine: &mut Engine<()>, _event: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            engine.schedule_in(SimDuration::from_secs(1.0), ());
        }
    }
}

fn engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("simcore/engine");
    group.bench_function("closed_loop_10k_events", |b| {
        b.iter(|| {
            let mut engine = Engine::new();
            engine.schedule_at(SimTime::ZERO, ());
            let mut world = Loop { remaining: 10_000 };
            black_box(engine.run(&mut world))
        });
    });
    group.finish();
}

fn metric_handles(c: &mut Criterion) {
    let mut group = c.benchmark_group("simcore/metric_handles");
    let labels = [("release", "1.0"), ("class", "CR")];
    group.bench_function("inc_counter_string_keyed", |b| {
        let mut reg = MetricsRegistry::new();
        b.iter(|| {
            reg.inc_counter("wsu_responses_total", &labels);
        });
    });
    group.bench_function("inc_counter_id", |b| {
        let mut reg = MetricsRegistry::new();
        let id = reg.counter_id("wsu_responses_total", &labels);
        b.iter(|| reg.inc_counter_id(black_box(id)));
    });
    group.bench_function("observe_string_keyed", |b| {
        let mut reg = MetricsRegistry::new();
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 0.37) % 5.0;
            reg.observe("wsu_exec_time_seconds", &labels[..1], x);
        });
    });
    group.bench_function("observe_id", |b| {
        let mut reg = MetricsRegistry::new();
        let id = reg.histogram_id("wsu_exec_time_seconds", &labels[..1]);
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 0.37) % 5.0;
            reg.observe_id(black_box(id), x);
        });
    });
    group.finish();
}

criterion_group!(benches, rng, queue, engine, metric_handles);
criterion_main!(benches);
