//! Benchmarks regeneration of Table 5 (correlated releases): one run
//! (four workloads share the structure; run 1 is representative) across
//! the three paper timeouts at 2,000 requests.

use std::hint::black_box;
use wsu_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsu_experiments::midsim::simulate_run;
use wsu_experiments::table5::run_table5_with;
use wsu_experiments::{DEFAULT_SEED, PAPER_TIMEOUTS};
use wsu_workload::outcomes::CorrelatedOutcomes;
use wsu_workload::runs::RunSpec;
use wsu_workload::timing::ExecTimeModel;

fn table5(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    for spec in RunSpec::all() {
        let gen = CorrelatedOutcomes::from_run(&spec);
        group.bench_with_input(BenchmarkId::new("run", spec.run), &spec.run, |b, _| {
            b.iter(|| {
                black_box(simulate_run(
                    &gen,
                    ExecTimeModel::paper(),
                    2_000,
                    &PAPER_TIMEOUTS,
                    DEFAULT_SEED,
                    "bench",
                ))
            });
        });
    }
    group.bench_function("full_table_2k", |b| {
        b.iter(|| {
            black_box(run_table5_with(
                DEFAULT_SEED,
                2_000,
                &PAPER_TIMEOUTS,
                ExecTimeModel::paper(),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, table5);
criterion_main!(benches);
