//! Benchmarks regeneration of Table 2 (duration of managed upgrade) at
//! reduced scale: one (scenario, detection) study per iteration.

use std::hint::black_box;
use wsu_bayes::whitebox::Resolution;
use wsu_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsu_experiments::bayes_study::{run_study, Detection, StudyConfig};
use wsu_experiments::DEFAULT_SEED;
use wsu_workload::scenario::Scenario;

fn bench_config(demands: u64, every: u64) -> StudyConfig {
    StudyConfig {
        demands,
        checkpoint_every: every,
        resolution: Resolution {
            a_cells: 48,
            b_cells: 48,
            q_cells: 16,
        },
        adaptive: None,
        confidence: 0.99,
        target: 1e-3,
        seed: DEFAULT_SEED,
    }
}

fn table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for detection in Detection::paper_regimes() {
        group.bench_with_input(
            BenchmarkId::new("scenario1", detection.label()),
            &detection,
            |b, &d| {
                let config = bench_config(5_000, 500);
                b.iter(|| black_box(run_study(&Scenario::one(), d, &config)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scenario2", detection.label()),
            &detection,
            |b, &d| {
                let config = bench_config(2_000, 200);
                b.iter(|| black_box(run_study(&Scenario::two(), d, &config)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
