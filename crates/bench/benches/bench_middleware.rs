//! Micro-benchmarks of the middleware hot path: one demand end to end
//! under each operating mode, and the adjudicator on collected
//! responses.

use std::hint::black_box;
use wsu_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsu_core::adjudicate::{Adjudicator, CollectedResponse, SelectionPolicy};
use wsu_core::middleware::{MiddlewareConfig, UpgradeMiddleware};
use wsu_core::modes::{OperatingMode, SequentialOrder};
use wsu_core::release::ReleaseId;
use wsu_obs::recorder::{NullRecorder, SharedRecorder};
use wsu_simcore::rng::StreamRng;
use wsu_simcore::time::SimDuration;
use wsu_wstack::endpoint::SyntheticService;
use wsu_wstack::message::Envelope;
use wsu_wstack::outcome::{OutcomeProfile, ResponseClass};

fn middleware_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("middleware/process");
    let modes = [
        OperatingMode::ParallelReliability,
        OperatingMode::ParallelResponsiveness,
        OperatingMode::ParallelDynamic { quorum: 1 },
        OperatingMode::Sequential {
            order: SequentialOrder::Deployment,
        },
    ];
    for mode in modes {
        group.bench_with_input(BenchmarkId::from_parameter(mode.label()), &mode, |b, &m| {
            let mut config = MiddlewareConfig::paper(2.0);
            config.mode = m;
            let mut mw = UpgradeMiddleware::new(config);
            mw.deploy(
                SyntheticService::builder("Svc", "1.0")
                    .outcomes(OutcomeProfile::new(0.7, 0.15, 0.15))
                    .exec_time_mean(0.7)
                    .build(),
            );
            mw.deploy(
                SyntheticService::builder("Svc", "1.1")
                    .outcomes(OutcomeProfile::new(0.7, 0.15, 0.15))
                    .exec_time_mean(0.7)
                    .build(),
            );
            let request = Envelope::request("invoke");
            let mut rng = StreamRng::from_seed(7);
            b.iter(|| black_box(mw.process(&request, &mut rng).unwrap()));
        });
    }
    group.finish();
}

/// The process hot path with each recorder flavour, to measure the
/// observability overhead: `null` is the uninstrumented default (must
/// stay within a few percent of the pre-observability baseline),
/// `shared` pays for real event capture.
fn middleware_recorders(c: &mut Criterion) {
    let mut group = c.benchmark_group("middleware/recorder");
    let build = || {
        let mut mw = UpgradeMiddleware::new(MiddlewareConfig::paper(2.0));
        mw.deploy(
            SyntheticService::builder("Svc", "1.0")
                .outcomes(OutcomeProfile::new(0.7, 0.15, 0.15))
                .exec_time_mean(0.7)
                .build(),
        );
        mw.deploy(
            SyntheticService::builder("Svc", "1.1")
                .outcomes(OutcomeProfile::new(0.7, 0.15, 0.15))
                .exec_time_mean(0.7)
                .build(),
        );
        mw
    };
    group.bench_function("null", |b| {
        let mut mw = build();
        mw.set_recorder(NullRecorder);
        let request = Envelope::request("invoke");
        let mut rng = StreamRng::from_seed(7);
        b.iter(|| black_box(mw.process(&request, &mut rng).unwrap()));
    });
    group.bench_function("shared", |b| {
        let mut mw = build();
        mw.set_recorder(SharedRecorder::new());
        let request = Envelope::request("invoke");
        let mut rng = StreamRng::from_seed(7);
        b.iter(|| black_box(mw.process(&request, &mut rng).unwrap()));
    });
    group.finish();
}

fn adjudicator(c: &mut Criterion) {
    let mut group = c.benchmark_group("middleware/adjudicate");
    let collected = [
        CollectedResponse {
            release: ReleaseId::new(0),
            class: ResponseClass::Correct,
            exec_time: SimDuration::from_secs(0.4),
        },
        CollectedResponse {
            release: ReleaseId::new(1),
            class: ResponseClass::NonEvidentFailure,
            exec_time: SimDuration::from_secs(0.6),
        },
    ];
    for policy in [
        SelectionPolicy::Random,
        SelectionPolicy::Fastest,
        SelectionPolicy::Majority,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &p| {
                let adj = Adjudicator::new(p);
                let mut rng = StreamRng::from_seed(9);
                b.iter(|| black_box(adj.adjudicate(&collected, &mut rng)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, middleware_modes, middleware_recorders, adjudicator);
criterion_main!(benches);
