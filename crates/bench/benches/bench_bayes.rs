//! Micro-benchmarks of the Bayesian machinery: the white-box posterior
//! update (the per-checkpoint cost of the study), its marginalisation,
//! and the black-box conjugate-grid path.

use std::hint::black_box;
use wsu_bayes::adaptive::AdaptiveWhiteBox;
use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::blackbox::BlackBoxInference;
use wsu_bayes::counts::JointCounts;
use wsu_bayes::kernels;
use wsu_bayes::whitebox::{CoincidencePrior, Resolution, WhiteBoxInference};
use wsu_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn whitebox_engine(res: Resolution) -> WhiteBoxInference {
    WhiteBoxInference::with_resolution(
        ScaledBeta::new(20.0, 20.0, 0.002).unwrap(),
        ScaledBeta::new(2.0, 3.0, 0.002).unwrap(),
        CoincidencePrior::IndifferenceUniform,
        res,
    )
}

fn whitebox_posterior(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes/whitebox_posterior");
    let counts = JointCounts::from_raw(50_000, 15, 35, 25);
    for (label, res) in [
        (
            "48x48x16",
            Resolution {
                a_cells: 48,
                b_cells: 48,
                q_cells: 16,
            },
        ),
        (
            "64x64x24",
            Resolution {
                a_cells: 64,
                b_cells: 64,
                q_cells: 24,
            },
        ),
        (
            "96x96x32",
            Resolution {
                a_cells: 96,
                b_cells: 96,
                q_cells: 32,
            },
        ),
    ] {
        let engine = whitebox_engine(res);
        group.bench_with_input(BenchmarkId::from_parameter(label), &counts, |b, counts| {
            b.iter(|| black_box(engine.posterior(counts)));
        });
    }
    group.finish();
}

fn whitebox_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes/incremental");
    // One study checkpoint: fold in the counts accumulated over another
    // 500 demands (mostly r4, a couple of single failures) and read the
    // switching-criterion percentiles off the cached marginals. This is
    // the steady-state hot path of `run_study` / `assess_incremental`.
    for (label, res) in [
        (
            "48x48x16",
            Resolution {
                a_cells: 48,
                b_cells: 48,
                q_cells: 16,
            },
        ),
        (
            "96x96x32",
            Resolution {
                a_cells: 96,
                b_cells: 96,
                q_cells: 32,
            },
        ),
    ] {
        let engine = whitebox_engine(res);
        let mut updater = engine.updater();
        let mut counts = JointCounts::new();
        group.bench_with_input(BenchmarkId::new("checkpoint", label), &(), move |b, ()| {
            b.iter(|| {
                counts = JointCounts::from_raw(
                    counts.demands() + 500,
                    counts.both_failed(),
                    counts.only_a_failed() + 1,
                    counts.only_b_failed() + 1,
                );
                updater.update_to(&counts);
                black_box(
                    updater.marginal_a().percentile(0.99) + updater.marginal_b().percentile(0.99),
                )
            });
        });
    }
    // The same checkpoint through the batch API, for the ns/op ratio the
    // BENCH_bayes.json report is meant to expose.
    let engine = whitebox_engine(Resolution::default());
    let counts = JointCounts::from_raw(50_000, 15, 35, 25);
    group.bench_function("batch_equivalent/96x96x32", |b| {
        b.iter(|| {
            let posterior = engine.posterior(&counts);
            black_box(
                posterior.marginal_a().percentile(0.99) + posterior.marginal_b().percentile(0.99),
            )
        });
    });
    // Marginal queries alone on the cached views (no update).
    let mut updater = engine.updater();
    updater.update_to(&counts);
    group.bench_function("view_queries/96x96x32", |b| {
        b.iter(|| {
            black_box(updater.marginal_a().percentile(0.99) + updater.marginal_b().percentile(0.99))
        });
    });
    group.finish();
}

/// Per-kernel throughput over a default-grid-sized buffer (96×96×32 =
/// 294,912 cells): the lane-chunked structure-of-arrays kernels the
/// white-box hot paths are built from.
fn whitebox_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes/kernels");
    const CELLS: usize = 96 * 96 * 32;
    // Synthetic but realistically-shaped data: log-weights spread over
    // the post-shift band the updater produces, log-probability tables
    // in the per-demand range, and a sprinkle of dead (-inf) cells.
    let base: Vec<f64> = (0..CELLS)
        .map(|i| {
            if i % 37 == 0 {
                f64::NEG_INFINITY
            } else {
                -((i % 7919) as f64) * 1.5e-3
            }
        })
        .collect();
    let p1: Vec<f64> = (0..CELLS)
        .map(|i| -1e-4 * ((i % 997) as f64) - 1e-6)
        .collect();
    let p2: Vec<f64> = (0..CELLS)
        .map(|i| -2e-4 * ((i % 641) as f64) - 1e-6)
        .collect();
    let p3: Vec<f64> = (0..CELLS)
        .map(|i| -5e-5 * ((i % 1301) as f64) - 1e-6)
        .collect();

    let mut w = base.clone();
    group.bench_function("axpy/96x96x32", |b| {
        b.iter(|| kernels::axpy(black_box(&mut w), black_box(&p1), 500.0));
    });
    let mut w = base.clone();
    group.bench_function("axpy_max/96x96x32", |b| {
        b.iter(|| black_box(kernels::axpy_max(black_box(&mut w), black_box(&p1), 500.0)));
    });
    let mut w = base.clone();
    group.bench_function("fused3/96x96x32", |b| {
        b.iter(|| {
            black_box(kernels::fused_axpy_max(
                black_box(&mut w),
                &[(&p1, 498.0), (&p2, 1.0), (&p3, 1.0)],
            ))
        });
    });
    group.bench_function("exp_weights/96x96x32", |b| {
        let mut x = vec![0.0; CELLS];
        b.iter(|| kernels::exp_weights(black_box(&base), 0.0, black_box(&mut x)));
    });
    group.bench_function("exp_stride_sums/96x96x32", |b| {
        let mut a_sums = vec![0.0; 96];
        let mut b_sums = vec![0.0; 96];
        b.iter(|| {
            kernels::exp_stride_sums(black_box(&base), 0.0, 32, &mut a_sums, &mut b_sums);
            black_box(a_sums[0] + b_sums[0])
        });
    });
    group.finish();
}

/// Adaptive coarse-to-fine vs the fixed default grid on the same
/// growing-counts checkpoint loop as `bayes/incremental` — the latency
/// side of the adaptive contract (the accuracy side is pinned by
/// `wsu_bayes::adaptive`'s golden tests). The adaptive cost includes
/// the coarse tracker, the window re-selection and any fine-window
/// rebuilds the trajectory triggers.
fn whitebox_adaptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes/adaptive");
    let engine = AdaptiveWhiteBox::new(
        ScaledBeta::new(20.0, 20.0, 0.002).unwrap(),
        ScaledBeta::new(2.0, 3.0, 0.002).unwrap(),
        CoincidencePrior::IndifferenceUniform,
        Resolution::adaptive(),
    );
    let mut updater = engine.updater();
    let mut counts = JointCounts::new();
    group.bench_function("checkpoint/coarse32_fine96", move |b| {
        b.iter(|| {
            counts = JointCounts::from_raw(
                counts.demands() + 500,
                counts.both_failed(),
                counts.only_a_failed() + 1,
                counts.only_b_failed() + 1,
            );
            updater.update_to(&counts);
            black_box(updater.marginal_a().percentile(0.99) + updater.marginal_b().percentile(0.99))
        });
    });
    group.finish();
}

fn blackbox_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes/blackbox_incremental");
    let prior = ScaledBeta::new(2.0, 3.0, 0.01).unwrap();
    let inf = BlackBoxInference::new(prior, 512);
    let mut updater = inf.updater();
    let mut demands = 0u64;
    group.bench_function("per_demand/512", move |b| {
        b.iter(|| {
            demands += 1;
            updater.update_to(demands, demands / 1_000);
            black_box(updater.confidence(1e-3))
        });
    });
    group.finish();
}

fn whitebox_marginals(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes/marginals");
    let engine = whitebox_engine(Resolution::default());
    let posterior = engine.posterior(&JointCounts::from_raw(50_000, 15, 35, 25));
    group.bench_function("marginal_b_p99", |b| {
        b.iter(|| black_box(posterior.marginal_b().percentile(0.99)));
    });
    group.bench_function("marginal_ab_64bins", |b| {
        b.iter(|| black_box(posterior.marginal_ab(64)));
    });
    group.finish();
}

fn blackbox_posterior(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes/blackbox_posterior");
    for cells in [256usize, 1024, 4096] {
        let prior = ScaledBeta::new(2.0, 3.0, 0.01).unwrap();
        let inf = BlackBoxInference::new(prior, cells);
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter(|| black_box(inf.posterior(10_000, 8).percentile(0.99)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    whitebox_posterior,
    whitebox_incremental,
    whitebox_kernels,
    whitebox_adaptive,
    whitebox_marginals,
    blackbox_posterior,
    blackbox_incremental,
);
criterion_main!(benches);
