//! Micro-benchmarks of the Bayesian machinery: the white-box posterior
//! update (the per-checkpoint cost of the study), its marginalisation,
//! and the black-box conjugate-grid path.

use std::hint::black_box;
use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::blackbox::BlackBoxInference;
use wsu_bayes::counts::JointCounts;
use wsu_bayes::whitebox::{CoincidencePrior, Resolution, WhiteBoxInference};
use wsu_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn whitebox_engine(res: Resolution) -> WhiteBoxInference {
    WhiteBoxInference::with_resolution(
        ScaledBeta::new(20.0, 20.0, 0.002).unwrap(),
        ScaledBeta::new(2.0, 3.0, 0.002).unwrap(),
        CoincidencePrior::IndifferenceUniform,
        res,
    )
}

fn whitebox_posterior(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes/whitebox_posterior");
    let counts = JointCounts::from_raw(50_000, 15, 35, 25);
    for (label, res) in [
        (
            "48x48x16",
            Resolution {
                a_cells: 48,
                b_cells: 48,
                q_cells: 16,
            },
        ),
        (
            "64x64x24",
            Resolution {
                a_cells: 64,
                b_cells: 64,
                q_cells: 24,
            },
        ),
        (
            "96x96x32",
            Resolution {
                a_cells: 96,
                b_cells: 96,
                q_cells: 32,
            },
        ),
    ] {
        let engine = whitebox_engine(res);
        group.bench_with_input(BenchmarkId::from_parameter(label), &counts, |b, counts| {
            b.iter(|| black_box(engine.posterior(counts)));
        });
    }
    group.finish();
}

fn whitebox_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes/incremental");
    // One study checkpoint: fold in the counts accumulated over another
    // 500 demands (mostly r4, a couple of single failures) and read the
    // switching-criterion percentiles off the cached marginals. This is
    // the steady-state hot path of `run_study` / `assess_incremental`.
    for (label, res) in [
        (
            "48x48x16",
            Resolution {
                a_cells: 48,
                b_cells: 48,
                q_cells: 16,
            },
        ),
        (
            "96x96x32",
            Resolution {
                a_cells: 96,
                b_cells: 96,
                q_cells: 32,
            },
        ),
    ] {
        let engine = whitebox_engine(res);
        let mut updater = engine.updater();
        let mut counts = JointCounts::new();
        group.bench_with_input(BenchmarkId::new("checkpoint", label), &(), move |b, ()| {
            b.iter(|| {
                counts = JointCounts::from_raw(
                    counts.demands() + 500,
                    counts.both_failed(),
                    counts.only_a_failed() + 1,
                    counts.only_b_failed() + 1,
                );
                updater.update_to(&counts);
                black_box(
                    updater.marginal_a().percentile(0.99) + updater.marginal_b().percentile(0.99),
                )
            });
        });
    }
    // The same checkpoint through the batch API, for the ns/op ratio the
    // BENCH_bayes.json report is meant to expose.
    let engine = whitebox_engine(Resolution::default());
    let counts = JointCounts::from_raw(50_000, 15, 35, 25);
    group.bench_function("batch_equivalent/96x96x32", |b| {
        b.iter(|| {
            let posterior = engine.posterior(&counts);
            black_box(
                posterior.marginal_a().percentile(0.99) + posterior.marginal_b().percentile(0.99),
            )
        });
    });
    // Marginal queries alone on the cached views (no update).
    let mut updater = engine.updater();
    updater.update_to(&counts);
    group.bench_function("view_queries/96x96x32", |b| {
        b.iter(|| {
            black_box(updater.marginal_a().percentile(0.99) + updater.marginal_b().percentile(0.99))
        });
    });
    group.finish();
}

fn blackbox_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes/blackbox_incremental");
    let prior = ScaledBeta::new(2.0, 3.0, 0.01).unwrap();
    let inf = BlackBoxInference::new(prior, 512);
    let mut updater = inf.updater();
    let mut demands = 0u64;
    group.bench_function("per_demand/512", move |b| {
        b.iter(|| {
            demands += 1;
            updater.update_to(demands, demands / 1_000);
            black_box(updater.confidence(1e-3))
        });
    });
    group.finish();
}

fn whitebox_marginals(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes/marginals");
    let engine = whitebox_engine(Resolution::default());
    let posterior = engine.posterior(&JointCounts::from_raw(50_000, 15, 35, 25));
    group.bench_function("marginal_b_p99", |b| {
        b.iter(|| black_box(posterior.marginal_b().percentile(0.99)));
    });
    group.bench_function("marginal_ab_64bins", |b| {
        b.iter(|| black_box(posterior.marginal_ab(64)));
    });
    group.finish();
}

fn blackbox_posterior(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes/blackbox_posterior");
    for cells in [256usize, 1024, 4096] {
        let prior = ScaledBeta::new(2.0, 3.0, 0.01).unwrap();
        let inf = BlackBoxInference::new(prior, cells);
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter(|| black_box(inf.posterior(10_000, 8).percentile(0.99)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    whitebox_posterior,
    whitebox_incremental,
    whitebox_marginals,
    blackbox_posterior,
    blackbox_incremental,
);
criterion_main!(benches);
