//! Micro-benchmarks of the Bayesian machinery: the white-box posterior
//! update (the per-checkpoint cost of the study), its marginalisation,
//! and the black-box conjugate-grid path.

use std::hint::black_box;
use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::blackbox::BlackBoxInference;
use wsu_bayes::counts::JointCounts;
use wsu_bayes::whitebox::{CoincidencePrior, Resolution, WhiteBoxInference};
use wsu_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn whitebox_engine(res: Resolution) -> WhiteBoxInference {
    WhiteBoxInference::with_resolution(
        ScaledBeta::new(20.0, 20.0, 0.002).unwrap(),
        ScaledBeta::new(2.0, 3.0, 0.002).unwrap(),
        CoincidencePrior::IndifferenceUniform,
        res,
    )
}

fn whitebox_posterior(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes/whitebox_posterior");
    let counts = JointCounts::from_raw(50_000, 15, 35, 25);
    for (label, res) in [
        (
            "48x48x16",
            Resolution {
                a_cells: 48,
                b_cells: 48,
                q_cells: 16,
            },
        ),
        (
            "64x64x24",
            Resolution {
                a_cells: 64,
                b_cells: 64,
                q_cells: 24,
            },
        ),
        (
            "96x96x32",
            Resolution {
                a_cells: 96,
                b_cells: 96,
                q_cells: 32,
            },
        ),
    ] {
        let engine = whitebox_engine(res);
        group.bench_with_input(BenchmarkId::from_parameter(label), &counts, |b, counts| {
            b.iter(|| black_box(engine.posterior(counts)));
        });
    }
    group.finish();
}

fn whitebox_marginals(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes/marginals");
    let engine = whitebox_engine(Resolution::default());
    let posterior = engine.posterior(&JointCounts::from_raw(50_000, 15, 35, 25));
    group.bench_function("marginal_b_p99", |b| {
        b.iter(|| black_box(posterior.marginal_b().percentile(0.99)));
    });
    group.bench_function("marginal_ab_64bins", |b| {
        b.iter(|| black_box(posterior.marginal_ab(64)));
    });
    group.finish();
}

fn blackbox_posterior(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes/blackbox_posterior");
    for cells in [256usize, 1024, 4096] {
        let prior = ScaledBeta::new(2.0, 3.0, 0.01).unwrap();
        let inf = BlackBoxInference::new(prior, cells);
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter(|| black_box(inf.posterior(10_000, 8).percentile(0.99)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    whitebox_posterior,
    whitebox_marginals,
    blackbox_posterior
);
criterion_main!(benches);
