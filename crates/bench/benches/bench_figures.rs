//! Benchmarks regeneration of Figs. 7 and 8 (percentile curves) at
//! reduced scale.

use std::hint::black_box;
use wsu_bayes::whitebox::Resolution;
use wsu_bench::{criterion_group, criterion_main, Criterion};
use wsu_experiments::bayes_study::StudyConfig;
use wsu_experiments::figures::{run_fig7, run_fig8};
use wsu_experiments::DEFAULT_SEED;

fn config(demands: u64, every: u64) -> StudyConfig {
    StudyConfig {
        demands,
        checkpoint_every: every,
        resolution: Resolution {
            a_cells: 48,
            b_cells: 48,
            q_cells: 16,
        },
        adaptive: None,
        confidence: 0.99,
        target: 1e-3,
        seed: DEFAULT_SEED,
    }
}

fn figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig7_scenario1", |b| {
        let cfg = config(5_000, 500);
        b.iter(|| black_box(run_fig7(&cfg)));
    });
    group.bench_function("fig8_scenario2", |b| {
        let cfg = config(2_000, 200);
        b.iter(|| black_box(run_fig8(&cfg)));
    });
    group.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
