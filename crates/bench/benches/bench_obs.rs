//! Micro-benchmarks for the observability layer: metrics registry
//! record/snapshot, quantile-sketch overhead, trace-event recording and
//! JSON serialisation.

use std::hint::black_box;

use wsu_bench::{criterion_group, criterion_main, Criterion};
use wsu_obs::event::TraceEvent;
use wsu_obs::metrics::MetricsRegistry;
use wsu_obs::recorder::{MemoryRecorder, NullRecorder, Recorder, SharedRecorder};
use wsu_obs::{QuantileSketch, SloConfig, SloObservation, SloWindow};

fn sample_event(demand: u64) -> TraceEvent {
    TraceEvent::ResponseCollected {
        t: demand as f64 * 0.5,
        demand,
        release: (demand % 2) as usize,
        class: "CR".into(),
        exec_time: 0.35,
    }
}

fn registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/registry");
    group.sample_size(20);
    group.bench_function("counter_inc", |b| {
        let mut reg = MetricsRegistry::new();
        b.iter(|| {
            reg.inc_counter("wsu_demands_total", &[("mode", "parallel")]);
            black_box(reg.counter("wsu_demands_total", &[("mode", "parallel")]))
        });
    });
    group.bench_function("histogram_observe", |b| {
        let mut reg = MetricsRegistry::new();
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 0.37) % 5.0;
            reg.observe("wsu_response_time_seconds", &[], x);
        });
    });
    group.bench_function("snapshot_100_series", |b| {
        let mut reg = MetricsRegistry::new();
        for i in 0..100 {
            let label = format!("r{i}");
            reg.add_counter("wsu_responses_total", &[("release", &label)], i);
        }
        b.iter(|| black_box(reg.snapshot().len()));
    });
    group.finish();
}

fn recorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/recorder");
    group.sample_size(20);
    group.bench_function("null_record", |b| {
        let mut rec = NullRecorder;
        let mut demand = 0u64;
        b.iter(|| {
            demand += 1;
            if rec.enabled() {
                rec.record(sample_event(demand));
            }
            black_box(demand)
        });
    });
    group.bench_function("memory_record", |b| {
        let mut rec = MemoryRecorder::new();
        let mut demand = 0u64;
        b.iter(|| {
            demand += 1;
            rec.record(sample_event(demand));
            black_box(rec.len())
        });
    });
    group.bench_function("shared_record", |b| {
        let mut rec = SharedRecorder::new();
        let mut demand = 0u64;
        b.iter(|| {
            demand += 1;
            rec.record(sample_event(demand));
            black_box(demand)
        });
    });
    group.bench_function("event_to_json", |b| {
        let event = sample_event(7);
        b.iter(|| black_box(event.to_json().len()));
    });
    group.finish();
}

fn quantile(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/quantile");
    group.sample_size(20);
    group.bench_function("sketch_observe", |b| {
        let mut sketch = QuantileSketch::default();
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 0.37) % 5.0 + 1e-3;
            sketch.observe(x);
            black_box(sketch.count())
        });
    });
    group.bench_function("sketch_observe_id", |b| {
        let mut reg = MetricsRegistry::new();
        let id = reg.sketch_id("wsu_response_time_quantiles", &[]);
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 0.37) % 5.0 + 1e-3;
            reg.observe_sketch_id(id, x);
        });
    });
    group.bench_function("sketch_quantile_read", |b| {
        let mut sketch = QuantileSketch::default();
        let mut x = 0.0f64;
        for _ in 0..10_000 {
            x = (x + 0.37) % 5.0 + 1e-3;
            sketch.observe(x);
        }
        b.iter(|| black_box(sketch.p99()));
    });
    group.bench_function("sketch_merge", |b| {
        let mut shard = QuantileSketch::default();
        let mut x = 0.0f64;
        for _ in 0..10_000 {
            x = (x + 0.37) % 5.0 + 1e-3;
            shard.observe(x);
        }
        let mut acc = QuantileSketch::default();
        b.iter(|| {
            acc.merge(&shard);
            black_box(acc.count())
        });
    });
    group.bench_function("slo_observe", |b| {
        let mut slo = SloWindow::new(SloConfig::default());
        let mut t = 0.0f64;
        b.iter(|| {
            t += 0.6;
            slo.observe(SloObservation {
                t,
                available: true,
                fault: false,
                false_alarm: false,
                response_time: 0.6,
            });
            black_box(slo.snapshot().demands)
        });
    });
    group.finish();
}

criterion_group!(benches, registry, recorder, quantile);
criterion_main!(benches);
