//! Benchmark crate with a self-contained measurement harness.
//!
//! Each paper table/figure has a bench that regenerates it at reduced
//! scale (so `cargo bench` terminates quickly) and prints the same rows
//! the experiment binaries do at full scale. Micro-benchmarks cover the
//! middleware hot path, the Bayesian posterior update, the simulation
//! engine and the observability layer.
//!
//! The harness in this module mirrors the subset of the `criterion` API
//! the benches use ([`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`criterion_group!`]/[`criterion_main!`]), so the
//! bench sources read like ordinary criterion benches while the crate
//! stays dependency-free (the container building this workspace has no
//! registry access). Timing is median-of-samples over auto-calibrated
//! iteration batches; results print as `name  median  (min .. max)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Formats a duration the way the reports print it.
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Identifier for a parameterised benchmark, compatible with
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-benchmark timing loop handed to the closure, compatible with
/// `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    measurements: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            measurements: Vec::new(),
        }
    }

    /// Times `routine`, first calibrating how many iterations fit in a
    /// sample, then collecting `samples` timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch takes >= 1 ms (or a
        // hard cap is hit, for very slow routines).
        let target = Duration::from_millis(1);
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(200) {
                // A single batch is already expensive: keep the sample
                // count low so slow benches still terminate quickly.
                self.measurements
                    .push(elapsed / u32::try_from(iters).unwrap_or(u32::MAX));
                for _ in 1..self.samples.min(3) {
                    let start = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(routine());
                    }
                    self.measurements
                        .push(start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
                }
                return;
            }
            if elapsed >= target || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.measurements
                .push(start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
        }
    }
}

/// A named group of benchmarks, compatible with
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, |b| f(b));
        self
    }

    /// Runs a benchmark that takes an input by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; output is printed as each
    /// benchmark completes).
    pub fn finish(&mut self) {}
}

/// The top-level harness state, compatible with `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, Duration, Duration, Duration)>,
}

impl Criterion {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&name.to_string(), 10, |b| f(b));
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, samples: usize, mut f: F) {
        let mut bencher = Bencher::new(samples);
        f(&mut bencher);
        let mut m = bencher.measurements;
        if m.is_empty() {
            m.push(Duration::ZERO);
        }
        m.sort();
        let median = m[m.len() / 2];
        let min = m[0];
        let max = m[m.len() - 1];
        println!(
            "{name:<60} {:>12}   ({} .. {})",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max)
        );
        self.results.push((name.to_string(), median, min, max));
    }

    /// Median timings collected so far, as `(name, median)` pairs.
    pub fn medians(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.results.iter().map(|(n, med, _, _)| (n.as_str(), *med))
    }

    /// Full results collected so far, as `(name, median, min, max)`.
    pub fn results(&self) -> impl Iterator<Item = (&str, Duration, Duration, Duration)> {
        self.results
            .iter()
            .map(|(n, med, min, max)| (n.as_str(), *med, *min, *max))
    }
}

/// Machine-readable benchmark reports (the `BENCH_*.json` files).
///
/// The format is deliberately small and dependency-free:
///
/// ```json
/// {
///   "schema": "wsu-bench/1",
///   "bench": "BENCH_bayes",
///   "unit": "ns",
///   "results": [
///     { "name": "bayes/incremental/checkpoint", "median_ns": 1234,
///       "min_ns": 1200, "max_ns": 1300 }
///   ]
/// }
/// ```
///
/// `median_ns` is the median ns/op (micro-benchmarks) or the median wall
/// time of a whole run (experiment trajectories); `min_ns`/`max_ns` bound
/// the observed samples.
pub mod report {
    use std::path::Path;
    use std::time::Duration;

    /// One named measurement destined for a `BENCH_*.json` file.
    #[derive(Debug, Clone)]
    pub struct Entry {
        /// Benchmark name (e.g. `bayes/incremental/checkpoint`).
        pub name: String,
        /// Median time per operation (or per run).
        pub median: Duration,
        /// Fastest observed sample.
        pub min: Duration,
        /// Slowest observed sample.
        pub max: Duration,
    }

    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Renders a report to its JSON string. `bench` names the report
    /// (conventionally the output file stem, e.g. `BENCH_bayes`).
    pub fn render_json(bench: &str, entries: &[Entry]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"wsu-bench/1\",\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(bench)));
        out.push_str("  \"unit\": \"ns\",\n");
        out.push_str("  \"results\": [\n");
        for (i, e) in entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {} }}{}\n",
                escape(&e.name),
                e.median.as_nanos(),
                e.min.as_nanos(),
                e.max.as_nanos(),
                if i + 1 < entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes a report to `path` (creating parent directories).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating directories or writing.
    pub fn write_json(path: &Path, bench: &str, entries: &[Entry]) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, render_json(bench, entries))
    }
}

/// Writes the collected results to the JSON path named by the
/// `WSU_BENCH_JSON` environment variable, if set. Called by
/// [`criterion_main!`] after all groups have run, so
/// `WSU_BENCH_JSON=results/BENCH_bayes.json cargo bench --bench
/// bench_bayes` emits the machine-readable report alongside the usual
/// stdout table.
pub fn maybe_write_json_report(criterion: &Criterion) {
    let Ok(path) = std::env::var("WSU_BENCH_JSON") else {
        return;
    };
    let path = std::path::PathBuf::from(path);
    let bench = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    let entries: Vec<report::Entry> = criterion
        .results()
        .map(|(name, median, min, max)| report::Entry {
            name: name.to_string(),
            median,
            min,
            max,
        })
        .collect();
    match report::write_json(&path, &bench, &entries) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}

/// Declares the benchmark entry list, compatible with
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the benchmark `main`, compatible with
/// `criterion::criterion_main!`.
///
/// After all groups have run, the collected medians are written to the
/// JSON path in `WSU_BENCH_JSON` (if set) via
/// [`maybe_write_json_report`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::new();
            $($group(&mut criterion);)+
            $crate::maybe_write_json_report(&criterion);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::new();
        c.benchmark_group("g")
            .sample_size(5)
            .bench_function("noop", |b| b.iter(|| 1 + 1))
            .finish();
        assert_eq!(c.medians().count(), 1);
        let (name, median) = c.medians().next().unwrap();
        assert_eq!(name, "g/noop");
        assert!(median < Duration::from_millis(100));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
