//! Benchmark-only crate: see the `benches/` directory.
//!
//! Each paper table/figure has a bench that regenerates it at reduced
//! scale (so `cargo bench` terminates quickly) and prints the same rows
//! the experiment binaries do at full scale. Micro-benchmarks cover the
//! middleware hot path, the Bayesian posterior update and the simulation
//! engine.
