//! Perf-trajectory emitter: times the experiment pipelines at reduced
//! scale and writes `BENCH_experiments.json`.
//!
//! Usage: `perf_report [--out DIR] [--samples N] [--full]`
//!
//! Each entry is the wall time of one experiment run (`--quick`-scale by
//! default, paper scale with `--full`); with `--samples N > 1` the run is
//! repeated and the median reported. The JSON format is documented in
//! [`wsu_bench::report`]; pair this file with `BENCH_bayes.json`
//! (`WSU_BENCH_JSON=... cargo bench --bench bench_bayes`) to track both
//! the micro ns/op and the end-to-end trajectory across commits.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use wsu_bayes::whitebox::Resolution;
use wsu_bench::report::{write_json, Entry};
use wsu_experiments::bayes_study::StudyConfig;
use wsu_experiments::campaign::{run_campaign_jobs, standard_plans, CampaignConfig};
use wsu_experiments::fleetstudy::{run_fleetstudy_jobs, standard_cells, FleetStudyConfig};
use wsu_experiments::midsim::ObsSinks;
use wsu_experiments::{ablation, figures, table2, table5, table6, DEFAULT_SEED, PAPER_TIMEOUTS};
use wsu_simcore::par::Jobs;
use wsu_simcore::rng::MasterSeed;
use wsu_workload::timing::ExecTimeModel;

fn time_runs<F: FnMut()>(name: &str, samples: usize, mut run: F) -> Entry {
    let mut measurements: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed()
        })
        .collect();
    measurements.sort();
    let entry = Entry {
        name: name.to_string(),
        median: measurements[measurements.len() / 2],
        min: measurements[0],
        max: measurements[measurements.len() - 1],
    };
    eprintln!("{name:<40} {:?}", entry.median);
    entry
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let samples: usize = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
        .unwrap_or(1);

    // The same reduced-scale configurations the experiment binaries use
    // for `--quick`, so CI wall times track the real pipelines.
    let res = if full {
        Resolution::default()
    } else {
        Resolution {
            a_cells: 48,
            b_cells: 48,
            q_cells: 16,
        }
    };
    let study1 = StudyConfig {
        demands: if full { 50_000 } else { 10_000 },
        checkpoint_every: 500,
        resolution: res,
        adaptive: None,
        confidence: 0.99,
        target: 1e-3,
        seed: DEFAULT_SEED,
    };
    let study2 = StudyConfig {
        demands: if full { 10_000 } else { 4_000 },
        checkpoint_every: 100,
        resolution: res,
        adaptive: None,
        confidence: 0.99,
        target: 1e-3,
        seed: DEFAULT_SEED,
    };
    let scale = if full { "full" } else { "quick" };

    let mut entries = Vec::new();
    entries.push(time_runs(
        &format!("experiments/table2/{scale}"),
        samples,
        || {
            std::hint::black_box(table2::run_table2_with(DEFAULT_SEED, &study1, &study2));
        },
    ));
    let seeds: Vec<MasterSeed> = (0..if full { 10u64 } else { 3 })
        .map(|i| MasterSeed::new(DEFAULT_SEED.value().wrapping_add(i)))
        .collect();
    entries.push(time_runs(
        &format!("experiments/table2_spread/{scale}"),
        samples,
        || {
            std::hint::black_box(table2::run_table2_spread(&seeds, &study1, &study2));
        },
    ));
    entries.push(time_runs(
        &format!("experiments/fig7/{scale}"),
        samples,
        || {
            std::hint::black_box(figures::run_fig7(&study1));
        },
    ));
    entries.push(time_runs(
        &format!("experiments/fig8/{scale}"),
        samples,
        || {
            std::hint::black_box(figures::run_fig8(&study2));
        },
    ));
    entries.push(time_runs(
        &format!("experiments/ablations_coverage/{scale}"),
        samples,
        || {
            std::hint::black_box(ablation::run_coverage_ablation(&study1, &[0.0, 0.10, 0.25]));
        },
    ));
    entries.push(time_runs(
        &format!("experiments/ablations_prior/{scale}"),
        samples,
        || {
            std::hint::black_box(ablation::run_prior_ablation(&study1));
        },
    ));
    let campaign_config = if full {
        CampaignConfig::paper()
    } else {
        CampaignConfig::quick()
    };
    entries.push(time_runs(
        &format!("experiments/faultcampaign/{scale}"),
        samples,
        || {
            std::hint::black_box(run_campaign_jobs(
                &standard_plans(),
                &campaign_config,
                DEFAULT_SEED,
                &ObsSinks::default(),
                Jobs::serial(),
            ));
        },
    ));

    let fleet_config = if full {
        FleetStudyConfig::paper()
    } else {
        FleetStudyConfig::quick()
    };
    entries.push(time_runs(
        &format!("experiments/fleetstudy/{scale}"),
        samples,
        || {
            std::hint::black_box(run_fleetstudy_jobs(
                &standard_cells(),
                &fleet_config,
                DEFAULT_SEED,
                &ObsSinks::default(),
                Jobs::serial(),
            ));
        },
    ));

    // The parallel replication runner, sequentially and with a pool of
    // four, on the same workload — the jobs=1 vs jobs=4 pair is the
    // speedup a multi-core host gets for free (on a single-core host
    // the two rows coincide, minus scheduling noise).
    let requests = if full { 10_000 } else { 2_000 };
    for jobs in [1usize, 4] {
        entries.push(time_runs(
            &format!("experiments/table5/{scale}/jobs{jobs}"),
            samples,
            || {
                std::hint::black_box(table5::run_table5_jobs(
                    DEFAULT_SEED,
                    requests,
                    &PAPER_TIMEOUTS,
                    ExecTimeModel::paper(),
                    &ObsSinks::default(),
                    Jobs::new(jobs),
                ));
            },
        ));
        entries.push(time_runs(
            &format!("experiments/table6/{scale}/jobs{jobs}"),
            samples,
            || {
                std::hint::black_box(table6::run_table6_jobs(
                    DEFAULT_SEED,
                    requests,
                    &PAPER_TIMEOUTS,
                    ExecTimeModel::paper(),
                    &ObsSinks::default(),
                    Jobs::new(jobs),
                ));
            },
        ));
    }

    let path = out_dir.join("BENCH_experiments.json");
    write_json(&path, "BENCH_experiments", &entries)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
