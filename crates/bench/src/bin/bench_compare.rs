//! Perf regression guard: compares a fresh `BENCH_*.json` report
//! against a committed baseline and fails on large slowdowns.
//!
//! Usage: `bench_compare <baseline.json> <fresh.json> [--threshold X]
//! [--min-ns N]`
//!
//! Rows are matched by name; a row slower than `threshold ×` its
//! baseline median fails the run. The threshold defaults to 2× —
//! deliberately generous, so the guard catches real regressions (an
//! accidental `clone()` in the demand loop, a quadratic scan) while
//! staying robust to shared-runner noise. Rows whose baseline median is
//! below `--min-ns` (default 1000) are reported but never failed:
//! single-digit-nanosecond medians jitter by integer factors on busy
//! machines. Rows present on only one side are informational — adding
//! or retiring a benchmark must not break CI.
//!
//! The parser handles exactly the `wsu-bench/1` shape that
//! [`wsu_bench::report::render_json`] emits (one `{ "name": …,
//! "median_ns": … }` object per result); it is not a general JSON
//! reader.

use std::path::Path;
use std::process::ExitCode;

/// One `(name, median_ns)` row from a report.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    name: String,
    median_ns: u64,
}

/// Extracts the string value following `"<key>": "` at `from`.
fn string_field(text: &str, key: &str, from: usize) -> Option<(String, usize)> {
    let marker = format!("\"{key}\": \"");
    let start = text[from..].find(&marker)? + from + marker.len();
    let end = text[start..].find('"')? + start;
    Some((text[start..end].to_string(), end))
}

/// Extracts the integer value following `"<key>": ` at `from`.
fn int_field(text: &str, key: &str, from: usize) -> Option<(u64, usize)> {
    let marker = format!("\"{key}\": ");
    let start = text[from..].find(&marker)? + from + marker.len();
    let digits: String = text[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    let value = digits.parse().ok()?;
    Some((value, start + digits.len()))
}

/// Parses a `wsu-bench/1` report into its result rows.
fn parse_report(text: &str) -> Result<Vec<Row>, String> {
    let (schema, mut cursor) = string_field(text, "schema", 0).ok_or("missing \"schema\" field")?;
    if schema != "wsu-bench/1" {
        return Err(format!("unsupported schema {schema:?}"));
    }
    let mut rows = Vec::new();
    while let Some((name, after_name)) = string_field(text, "name", cursor) {
        let (median_ns, after_median) = int_field(text, "median_ns", after_name)
            .ok_or_else(|| format!("row {name:?} has no median_ns"))?;
        rows.push(Row { name, median_ns });
        cursor = after_median;
    }
    Ok(rows)
}

/// Outcome of comparing one shared row.
#[derive(Debug, PartialEq)]
enum Verdict {
    /// Within threshold (or faster).
    Ok { ratio: f64 },
    /// Baseline too small to compare reliably.
    TooSmall,
    /// Slower than `threshold ×` baseline.
    Regressed { ratio: f64 },
}

fn judge(baseline_ns: u64, fresh_ns: u64, threshold: f64, min_ns: u64) -> Verdict {
    if baseline_ns < min_ns {
        return Verdict::TooSmall;
    }
    let ratio = fresh_ns as f64 / baseline_ns as f64;
    if ratio > threshold {
        Verdict::Regressed { ratio }
    } else {
        Verdict::Ok { ratio }
    }
}

fn load(path: &str) -> Result<Vec<Row>, String> {
    let text = std::fs::read_to_string(Path::new(path)).map_err(|err| format!("{path}: {err}"))?;
    parse_report(&text).map_err(|err| format!("{path}: {err}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut threshold = 2.0f64;
    let mut min_ns = 1_000u64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => threshold = v,
                None => {
                    eprintln!("--threshold needs a number");
                    return ExitCode::from(2);
                }
            },
            "--min-ns" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => min_ns = v,
                None => {
                    eprintln!("--min-ns needs an integer");
                    return ExitCode::from(2);
                }
            },
            other => files.push(other.to_string()),
        }
    }
    let [baseline_path, fresh_path] = files.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json> [--threshold X] [--min-ns N]");
        return ExitCode::from(2);
    };

    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(err), _) | (_, Err(err)) => {
            eprintln!("bench_compare: {err}");
            return ExitCode::from(2);
        }
    };

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for row in &fresh {
        let Some(base) = baseline.iter().find(|b| b.name == row.name) else {
            println!(
                "  new      {:<50} {} ns (no baseline)",
                row.name, row.median_ns
            );
            continue;
        };
        compared += 1;
        match judge(base.median_ns, row.median_ns, threshold, min_ns) {
            Verdict::Ok { ratio } => {
                println!(
                    "  ok       {:<50} {} ns vs {} ns ({ratio:.2}x)",
                    row.name, row.median_ns, base.median_ns
                );
            }
            Verdict::TooSmall => {
                println!(
                    "  skipped  {:<50} baseline {} ns < {min_ns} ns floor",
                    row.name, base.median_ns
                );
            }
            Verdict::Regressed { ratio } => {
                regressions += 1;
                println!(
                    "  SLOWER   {:<50} {} ns vs {} ns ({ratio:.2}x > {threshold:.2}x)",
                    row.name, row.median_ns, base.median_ns
                );
            }
        }
    }
    for base in &baseline {
        if !fresh.iter().any(|r| r.name == base.name) {
            println!("  retired  {:<50} (baseline only)", base.name);
        }
    }

    if regressions > 0 {
        eprintln!(
            "bench_compare: {regressions} of {compared} shared rows regressed past {threshold:.2}x"
        );
        ExitCode::FAILURE
    } else {
        println!("bench_compare: {compared} shared rows within {threshold:.2}x");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_bench::report::{render_json, Entry};

    fn entry(name: &str, median_ns: u64) -> Entry {
        let d = std::time::Duration::from_nanos(median_ns);
        Entry {
            name: name.to_string(),
            median: d,
            min: d,
            max: d,
        }
    }

    #[test]
    fn parses_rendered_reports_round_trip() {
        let json = render_json(
            "BENCH_test",
            &[entry("a/b", 1234), entry("c/d/e", 9_999_999)],
        );
        let rows = parse_report(&json).unwrap();
        assert_eq!(
            rows,
            vec![
                Row {
                    name: "a/b".to_string(),
                    median_ns: 1234
                },
                Row {
                    name: "c/d/e".to_string(),
                    median_ns: 9_999_999
                },
            ]
        );
    }

    #[test]
    fn rejects_foreign_schemas_and_empty_input() {
        assert!(parse_report("{\"schema\": \"other/2\"}").is_err());
        assert!(parse_report("").is_err());
        let empty = render_json("BENCH_empty", &[]);
        assert_eq!(parse_report(&empty).unwrap(), Vec::<Row>::new());
    }

    #[test]
    fn judge_applies_threshold_and_floor() {
        assert_eq!(
            judge(10_000, 19_000, 2.0, 1_000),
            Verdict::Ok { ratio: 1.9 }
        );
        assert!(matches!(
            judge(10_000, 25_000, 2.0, 1_000),
            Verdict::Regressed { .. }
        ));
        // Sub-floor baselines are never failed, however large the ratio.
        assert_eq!(judge(2, 50, 2.0, 1_000), Verdict::TooSmall);
        // Faster is always fine.
        assert!(matches!(
            judge(10_000, 3_000, 2.0, 1_000),
            Verdict::Ok { .. }
        ));
    }
}
