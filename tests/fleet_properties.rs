//! Fleet-scale property battery: multi-seed sweeps over the weighted
//! release set and the staged canary chain.
//!
//! Invariants pinned here:
//!
//! * [`ReleaseSet::active_slice`]'s incremental cache agrees with a
//!   naive recompute across arbitrary suspend/restart/phase-out
//!   interleavings (32-seed sweep), and `total_active_weight` always
//!   equals the sum of the active releases' weights;
//! * demand routing matches the configured weights within Chernoff-style
//!   concentration bounds;
//! * under fault-injected chains, the serving weights always cover the
//!   traffic (they sum to 1), at most one canary is in flight, and a
//!   rollback never resurrects a phased-out release.

use std::collections::BTreeSet;

use wsu_core::fleet::{FleetOrchestrator, FleetPlan, ProbeRule, PromotionRule, RollbackRule};
use wsu_core::manage::RecoveryStrategy;
use wsu_core::release::{ReleaseId, ReleaseSet, ReleaseState};
use wsu_faults::{FaultAction, FaultClause, FaultInjector, FaultTrigger, FleetFaultScenario};
use wsu_simcore::dist::DelayModel;
use wsu_simcore::rng::{MasterSeed, StreamRng};
use wsu_wstack::endpoint::SyntheticService;

const SWEEP_SEEDS: u64 = 32;

fn service(release: &str) -> SyntheticService {
    SyntheticService::builder("Quote", release)
        .exec_time(DelayModel::constant(0.3))
        .build()
}

/// The reference implementation `active_slice` must agree with: walk
/// every release and collect the active ids in deployment order.
fn naive_active(releases: &ReleaseSet) -> Vec<ReleaseId> {
    releases
        .infos()
        .iter()
        .filter(|info| info.state == ReleaseState::Active)
        .map(|info| info.id)
        .collect()
}

fn naive_active_weight(releases: &ReleaseSet) -> f64 {
    naive_active(releases)
        .iter()
        .map(|&id| releases.weight(id).unwrap())
        .sum()
}

#[test]
fn active_slice_cache_is_coherent_across_lifecycle_interleavings() {
    for seed in 0..SWEEP_SEEDS {
        let mut rng = StreamRng::from_seed(seed);
        let n = 2 + (seed as usize % 5);
        let mut releases = ReleaseSet::new();
        let ids: Vec<ReleaseId> = (0..n)
            .map(|i| releases.deploy(service(&format!("1.{i}"))))
            .collect();
        for step in 0..200 {
            let id = *rng.pick(&ids);
            // Invalid transitions (e.g. restarting an active release)
            // are rejected with an error; the cache must stay coherent
            // either way.
            match rng.next_below(4) {
                0 => drop(releases.suspend(id)),
                1 => drop(releases.restart(id)),
                2 => drop(releases.phase_out(id)),
                _ => drop(releases.set_weight(id, rng.uniform(0.0, 3.0))),
            }
            assert_eq!(
                releases.active_slice(),
                naive_active(&releases).as_slice(),
                "cache diverged at seed {seed} step {step}"
            );
            let naive = naive_active_weight(&releases);
            assert!(
                (releases.total_active_weight() - naive).abs() < 1e-9,
                "weight cache diverged at seed {seed} step {step}: \
                 {} vs naive {naive}",
                releases.total_active_weight()
            );
        }
    }
}

#[test]
fn routing_matches_weights_within_chernoff_bounds() {
    const DRAWS: u64 = 20_000;
    let weights = [0.4, 0.3, 0.2, 0.1];
    for seed in 0..SWEEP_SEEDS {
        let mut releases = ReleaseSet::new();
        let ids: Vec<ReleaseId> = (0..weights.len())
            .map(|i| releases.deploy(service(&format!("1.{i}"))))
            .collect();
        for (&id, &w) in ids.iter().zip(&weights) {
            releases.set_weight(id, w).unwrap();
        }
        let mut rng = StreamRng::from_seed(0xC0FFEE ^ seed);
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..DRAWS {
            let id = releases.route(rng.next_f64()).expect("set serves");
            counts[id.index()] += 1;
        }
        for (i, (&count, &p)) in counts.iter().zip(&weights).enumerate() {
            let mean = DRAWS as f64 * p;
            // Chernoff/Hoeffding concentration: a 5-sigma envelope
            // around the binomial mean. With 32 seeds x 4 releases the
            // false-alarm probability is negligible (and the draw
            // stream is deterministic anyway).
            let slack = 5.0 * (mean * (1.0 - p)).sqrt();
            assert!(
                (count as f64 - mean).abs() <= slack,
                "seed {seed}: release {i} got {count} draws, expected \
                 {mean:.0} +/- {slack:.0}"
            );
        }
    }
}

/// The fault-injected chain used by the orchestrator sweeps: a crash
/// burst on the first canary, a persistent evident fault on the last
/// stage, correlated background crashes everywhere.
fn sweep_scenario(name: &str, fleet: usize) -> FleetFaultScenario {
    FleetFaultScenario::new(name, fleet)
        .release_clause(
            1,
            FaultClause::new(
                "canary-burst",
                FaultTrigger::DemandWindow { from: 30, to: 70 },
                FaultAction::Crash,
            ),
        )
        .release_clause(
            fleet - 1,
            FaultClause::new(
                "persistent-wrong",
                FaultTrigger::EveryNth { n: 2, phase: 0 },
                FaultAction::WrongValue { evident: true },
            ),
        )
        .coincident(FaultClause::new(
            "co-crash",
            FaultTrigger::Probabilistic {
                p: 0.01,
                stream: "fleet/co-crash".into(),
            },
            FaultAction::Crash,
        ))
}

fn sweep_plan(strategy: RecoveryStrategy) -> FleetPlan {
    FleetPlan {
        assess_interval: 25,
        promotion: PromotionRule {
            target_pfd: 0.05,
            confidence: 0.8,
            min_demands: 20,
        },
        rollback: RollbackRule {
            window: 10,
            max_fault_rate: 0.4,
        },
        probe: ProbeRule {
            window: 20,
            min_availability: 0.9,
        },
        suspend_after: 5,
        ..FleetPlan::with_strategy(strategy)
    }
}

fn sweep_fleet(seed: u64, fleet: usize, strategy: RecoveryStrategy) -> FleetOrchestrator {
    let master = MasterSeed::new(0xF1EE_7000 + seed);
    let scenario = sweep_scenario(&format!("sweep-{seed}"), fleet);
    let mut injectors = scenario
        .plans
        .iter()
        .enumerate()
        .map(|(i, plan)| FaultInjector::new(service(&format!("1.{i}")), plan.clone(), master));
    let mut orchestrator = FleetOrchestrator::new(
        injectors.next().expect("stable release"),
        sweep_plan(strategy),
        master,
    );
    for injector in injectors {
        orchestrator.push_stage(injector);
    }
    orchestrator
}

#[test]
fn serving_weights_always_sum_to_one_under_faults() {
    for seed in 0..8 {
        for strategy in RecoveryStrategy::all() {
            let mut fleet = sweep_fleet(seed, 3, strategy);
            for demand in 0..600u64 {
                fleet.run_demand();
                let status = fleet.status();
                let canary_weight = status.canary.map_or(0.0, |c| c.weight);
                assert!(
                    (status.stable_weight + canary_weight - 1.0).abs() < 1e-9,
                    "seed {seed} {strategy:?} demand {demand}: stable \
                     {} + canary {canary_weight} != 1",
                    status.stable_weight
                );
                // The middleware can always serve the next demand.
                assert!(
                    fleet.middleware().releases().total_active_weight() > 0.0,
                    "seed {seed} {strategy:?} demand {demand}: no \
                     routable weight"
                );
            }
        }
    }
}

#[test]
fn at_most_one_canary_is_ever_in_flight() {
    for seed in 0..8 {
        for strategy in RecoveryStrategy::all() {
            let mut fleet = sweep_fleet(seed, 4, strategy);
            for demand in 0..600u64 {
                fleet.run_demand();
                let status = fleet.status();
                // `canary` is an Option by construction; the sharper
                // invariant is that traffic never spreads beyond the
                // stable release plus that single canary.
                let releases = fleet.middleware().releases();
                let weighted = status
                    .releases
                    .iter()
                    .filter(|info| {
                        info.state == ReleaseState::Active
                            && releases.weight(info.id).unwrap() > 0.0
                    })
                    .count();
                let expected_max = 1 + usize::from(status.canary.is_some());
                assert!(
                    weighted <= expected_max,
                    "seed {seed} {strategy:?} demand {demand}: {weighted} \
                     releases carry weight, canary={:?}",
                    status.canary
                );
            }
        }
    }
}

#[test]
fn rollback_never_resurrects_a_phased_out_release() {
    for seed in 0..8 {
        for strategy in [
            RecoveryStrategy::DemoteAndRollback,
            RecoveryStrategy::Substitute,
        ] {
            let mut fleet = sweep_fleet(seed, 3, strategy);
            let mut phased_out: BTreeSet<usize> = BTreeSet::new();
            for demand in 0..600u64 {
                fleet.run_demand();
                let status = fleet.status();
                for info in &status.releases {
                    if phased_out.contains(&info.id.index()) {
                        assert_eq!(
                            info.state,
                            ReleaseState::PhasedOut,
                            "seed {seed} {strategy:?} demand {demand}: \
                             release {} came back from phase-out",
                            info.id.index()
                        );
                        assert_eq!(
                            fleet.middleware().releases().weight(info.id).unwrap(),
                            0.0,
                            "seed {seed} {strategy:?} demand {demand}: \
                             phased-out release {} carries weight",
                            info.id.index()
                        );
                    } else if info.state == ReleaseState::PhasedOut {
                        phased_out.insert(info.id.index());
                    }
                }
            }
            // The scripted canary burst demotes at least one canary on
            // every seed, so the sweep actually exercised the property.
            assert!(
                !phased_out.is_empty(),
                "seed {seed} {strategy:?}: no release was ever phased out"
            );
        }
    }
}
