//! Cross-crate observability test: a short managed upgrade traced end
//! to end, with the JSONL export parsed back and validated.

use composite_ws_upgrade::core::manage::SwitchCriterion;
use composite_ws_upgrade::core::upgrade::{ManagedUpgrade, UpgradeConfig, UpgradePhase};
use composite_ws_upgrade::obs::{parse_jsonl, SharedRecorder, SharedRegistry};
use composite_ws_upgrade::simcore::rng::MasterSeed;
use composite_ws_upgrade::wstack::endpoint::SyntheticService;
use composite_ws_upgrade::wstack::outcome::OutcomeProfile;
use wsu_bayes::whitebox::Resolution;

fn traced_upgrade() -> (ManagedUpgrade, SharedRecorder, SharedRegistry) {
    let config = UpgradeConfig::default()
        .with_resolution(Resolution {
            a_cells: 40,
            b_cells: 40,
            q_cells: 10,
        })
        .with_criterion(SwitchCriterion::better_than_old(0.95))
        .with_assess_interval(250);
    let mut upgrade = ManagedUpgrade::new(
        SyntheticService::builder("Svc", "1.0")
            .outcomes(OutcomeProfile::new(0.97, 0.02, 0.01))
            .exec_time_mean(0.1)
            .build(),
        SyntheticService::builder("Svc", "1.1")
            .outcomes(OutcomeProfile::always_correct())
            .exec_time_mean(0.1)
            .build(),
        config,
        MasterSeed::new(1),
    );
    let recorder = SharedRecorder::new();
    let registry = SharedRegistry::new();
    upgrade.attach_recorder(recorder.clone());
    upgrade.attach_metrics(&registry);
    upgrade.run_demands(4_000);
    (upgrade, recorder, registry)
}

#[test]
fn managed_upgrade_trace_has_exactly_one_switch_decision() {
    let (upgrade, recorder, registry) = traced_upgrade();
    assert!(matches!(upgrade.phase(), UpgradePhase::Switched { .. }));

    let events = recorder.snapshot();
    let switches: Vec<_> = events
        .iter()
        .filter(|e| e.kind() == "SwitchDecision")
        .collect();
    assert_eq!(switches.len(), 1, "one upgrade, one switch decision");

    // The trace covers the whole pipeline around the switch.
    for kind in ["DemandDispatched", "Adjudicated", "ConfidenceUpdated"] {
        assert!(
            events.iter().any(|e| e.kind() == kind),
            "missing {kind} events"
        );
    }

    // The registry agrees with the trace.
    assert_eq!(
        registry.with(|r| r.counter("wsu_switch_decisions_total", &[("decision", "switch")])),
        1
    );
    assert_eq!(
        registry.with(|r| r.counter("wsu_demands_total", &[])),
        4_000
    );
}

#[test]
fn virtual_timestamps_never_go_backwards() {
    let (_, recorder, _) = traced_upgrade();
    let events = recorder.snapshot();
    assert!(!events.is_empty());
    let mut last = f64::NEG_INFINITY;
    for event in &events {
        let t = event.virtual_time();
        assert!(
            t >= last,
            "virtual time went backwards: {t} after {last} ({})",
            event.kind()
        );
        last = t;
    }
}

#[test]
fn jsonl_export_round_trips() {
    let (_, recorder, _) = traced_upgrade();
    let path = std::env::temp_dir().join("wsu-obs-trace-test/upgrade.jsonl");
    recorder.write_jsonl(&path).expect("write trace");
    let text = std::fs::read_to_string(&path).expect("read trace back");
    let values = parse_jsonl(&text).expect("trace parses as JSONL");
    assert_eq!(values.len(), recorder.len());
    for value in &values {
        let kind = value.get("kind").and_then(|v| v.as_str()).expect("kind");
        assert!(!kind.is_empty());
        assert!(value.get("t").and_then(|v| v.as_f64()).is_some());
        assert!(value.get("demand").and_then(|v| v.as_u64()).is_some());
    }
    std::fs::remove_file(&path).ok();
}
