//! Integration: the managed-upgrade middleware over an unreliable,
//! latency-adding network, with rollback-and-retry recovery on one
//! release — wstack's transport and retry layers composed under core's
//! middleware and monitoring.

use wsu_core::middleware::{MiddlewareConfig, UpgradeMiddleware};
use wsu_core::monitor::MonitoringSubsystem;
use wsu_core::release::ReleaseId;
use wsu_simcore::dist::DelayModel;
use wsu_simcore::rng::{MasterSeed, StreamRng};
use wsu_wstack::endpoint::SyntheticService;
use wsu_wstack::message::Envelope;
use wsu_wstack::outcome::OutcomeProfile;
use wsu_wstack::retry::RetryingEndpoint;
use wsu_wstack::transport::TransportLink;

fn service(er: f64) -> SyntheticService {
    SyntheticService::builder("Svc", "1.0")
        .outcomes(OutcomeProfile::new(1.0 - er, er, 0.0))
        .exec_time(DelayModel::constant(0.2))
        .build()
}

fn run(mw: &mut UpgradeMiddleware, demands: u32, seed: MasterSeed) -> MonitoringSubsystem {
    let mut monitor = MonitoringSubsystem::new(0);
    let mut rng = seed.stream("demands");
    let mut mon_rng = seed.stream("monitor");
    let request = Envelope::request("invoke");
    for _ in 0..demands {
        let record = mw.process(&request, &mut rng).expect("active releases");
        monitor.observe(&record, &mut mon_rng);
    }
    monitor
}

#[test]
fn message_loss_shows_up_as_nrdt_and_redundancy_masks_it() {
    let seed = MasterSeed::new(404);
    let mut mw = UpgradeMiddleware::new(MiddlewareConfig::paper(2.0));
    // Both releases perfect, but each behind a 10%-lossy link.
    for _ in 0..2 {
        mw.deploy(
            TransportLink::new(service(0.0))
                .with_latency(DelayModel::constant(0.05))
                .with_loss_probability(0.10),
        );
    }
    let monitor = run(&mut mw, 5_000, seed);

    for idx in 0..2 {
        let stats = monitor.release_stats(ReleaseId::new(idx)).unwrap();
        let demands = stats.total_responses() + stats.nrdt();
        let loss = stats.nrdt() as f64 / demands as f64;
        assert!((loss - 0.10).abs() < 0.02, "release {idx} loss {loss}");
    }
    // 1-out-of-2 over independent links: the composite loses a demand
    // only when both links drop it (~1%).
    let sys = monitor.system_stats();
    let sys_loss = sys.nrdt() as f64 / (sys.total_responses() + sys.nrdt()) as f64;
    assert!(sys_loss < 0.03, "system loss {sys_loss}");
    assert!(sys.availability() > 0.97);
}

#[test]
fn retry_layer_reduces_evident_failures_behind_the_middleware() {
    let seed = MasterSeed::new(405);
    // Release 0: flaky but with transient-retry recovery.
    // Release 1: equally flaky, no recovery.
    let mut mw = UpgradeMiddleware::new(MiddlewareConfig::paper(3.0));
    mw.deploy(RetryingEndpoint::new(
        service(0.2),
        3,
        1.0,
        DelayModel::constant(0.01),
    ));
    mw.deploy(service(0.2));
    let monitor = run(&mut mw, 5_000, seed);

    let with_retry = monitor.release_stats(ReleaseId::new(0)).unwrap();
    let without = monitor.release_stats(ReleaseId::new(1)).unwrap();
    let er_rate = |s: &wsu_core::monitor::ReleaseStats| {
        s.count(wsu_wstack::outcome::ResponseClass::EvidentFailure) as f64
            / s.total_responses() as f64
    };
    assert!(
        er_rate(with_retry) < er_rate(without) / 10.0,
        "retry {} vs bare {}",
        er_rate(with_retry),
        er_rate(without)
    );
    // Retries cost time: the recovered release is slower on average.
    assert!(with_retry.mean_exec_time() > without.mean_exec_time());
}

#[test]
fn stacked_layers_compose() {
    // Transport over retry over service: the full onion, still a plain
    // ServiceEndpoint to the middleware.
    let seed = MasterSeed::new(406);
    let onion = TransportLink::new(RetryingEndpoint::new(
        service(0.3),
        2,
        1.0,
        DelayModel::constant(0.01),
    ))
    .with_latency(DelayModel::constant(0.02))
    .with_loss_probability(0.05);
    let mut mw = UpgradeMiddleware::new(MiddlewareConfig::paper(3.0));
    mw.deploy(onion);
    mw.deploy(service(0.0));
    let monitor = run(&mut mw, 3_000, seed);
    let sys = monitor.system_stats();
    // The clean second release keeps the composite essentially perfect.
    assert!(sys.availability() > 0.999);
    let correct = sys.count(wsu_wstack::outcome::ResponseClass::Correct);
    assert!(correct as f64 / sys.total_responses() as f64 > 0.99);
}

#[test]
fn determinism_across_the_full_stack() {
    let build = || {
        let seed = MasterSeed::new(407);
        let mut mw = UpgradeMiddleware::new(MiddlewareConfig::paper(2.0));
        mw.deploy(
            TransportLink::new(RetryingEndpoint::new(
                service(0.1),
                2,
                0.5,
                DelayModel::exponential(0.01),
            ))
            .with_latency(DelayModel::exponential(0.05))
            .with_loss_probability(0.02),
        );
        mw.deploy(service(0.05));
        let monitor = run(&mut mw, 1_000, seed);
        (
            monitor.system_stats().mean_response_time(),
            monitor.system_stats().availability(),
            monitor
                .release_stats(ReleaseId::new(0))
                .unwrap()
                .total_responses(),
        )
    };
    assert_eq!(build(), build());
}

#[test]
fn rng_streams_do_not_collide_between_layers() {
    // Two distinct stream derivations from one master seed stay distinct
    // through heavy interleaved consumption.
    let seed = MasterSeed::new(408);
    let mut a = seed.stream("layer/a");
    let mut b = seed.stream("layer/b");
    let mut collisions = 0;
    for _ in 0..10_000 {
        if a.next_u64() == b.next_u64() {
            collisions += 1;
        }
    }
    assert_eq!(collisions, 0);
    let _ = StreamRng::from_seed(1); // the raw constructor stays public
}
