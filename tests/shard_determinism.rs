//! Intra-replication sharding (`--shards`) must be invisible in every
//! output, exactly like the replication pool (`--jobs`, pinned by
//! `parallel_determinism.rs`) one level up: tables, metric snapshots,
//! event traces and merged dependability digests are byte-identical at
//! any shard count. These tests pin that contract for the three worlds
//! the issue names — table5, fault-campaign plan 0 and a three-release
//! fleet run.

use wsu_experiments::campaign::{run_campaign_jobs, standard_plans, CampaignConfig};
use wsu_experiments::midsim::ObsSinks;
use wsu_experiments::scalestudy::{run_scale, run_scalestudy, ScaleConfig};
use wsu_experiments::table5::{run_table5_jobs, run_table5_sharded};
use wsu_obs::{SharedRecorder, SharedRegistry, TraceEvent};
use wsu_simcore::par::Jobs;
use wsu_simcore::rng::MasterSeed;
use wsu_simcore::shard::Shards;
use wsu_workload::timing::ExecTimeModel;

const SEED: MasterSeed = MasterSeed::new(0x0BAD_5EED);

/// One observed table5 run at the given shard count, returning the
/// rendered table, the metrics snapshot and the event trace.
fn observed_table5(shards: Shards) -> (String, String, Vec<TraceEvent>) {
    let sinks = ObsSinks {
        recorder: Some(SharedRecorder::new()),
        metrics: Some(SharedRegistry::new()),
    };
    let table = run_table5_sharded(
        SEED,
        400,
        &[1.5, 3.0],
        ExecTimeModel::paper(),
        &sinks,
        Jobs::serial(),
        shards,
    );
    (
        table.render(),
        sinks.metrics.as_ref().unwrap().render_snapshot(),
        sinks.recorder.as_ref().unwrap().snapshot(),
    )
}

#[test]
fn table5_is_shard_invariant_across_all_outputs() {
    let serial = observed_table5(Shards::serial());
    for k in [2, 4] {
        let sharded = observed_table5(Shards::new(k));
        assert_eq!(serial.0, sharded.0, "rendered table differs at shards={k}");
        assert_eq!(
            serial.1, sharded.1,
            "metrics snapshot differs at shards={k}"
        );
        assert_eq!(serial.2, sharded.2, "event trace differs at shards={k}");
    }
    assert!(!serial.2.is_empty(), "trace should carry simulation events");
}

/// The sharded entry point must also be byte-identical to the pre-shard
/// serial runner — `--shards 1` is the old engine, not a lookalike.
#[test]
fn sharded_table5_matches_the_unsharded_runner() {
    let sinks = ObsSinks::default();
    let old = run_table5_jobs(
        SEED,
        400,
        &[1.5],
        ExecTimeModel::paper(),
        &sinks,
        Jobs::serial(),
    )
    .render();
    for k in [1, 2, 4] {
        let new = observed_table5_text(Shards::new(k));
        assert_eq!(old, new, "shards={k} deviates from the unsharded runner");
    }
}

fn observed_table5_text(shards: Shards) -> String {
    run_table5_sharded(
        SEED,
        400,
        &[1.5],
        ExecTimeModel::paper(),
        &ObsSinks::default(),
        Jobs::serial(),
        shards,
    )
    .render()
}

/// The fault campaign draws RNG *during* dispatch (synthetic services
/// and injectors sample inside `invoke`), so its demand loop stays
/// serial at any `--shards` — the flag is accepted and the output is
/// identical by construction. Pin plan 0's rendered table and snapshot
/// JSON across repeated runs so a future attempt to wire sharding into
/// this world cannot silently change them.
#[test]
fn campaign_plan0_output_is_stable_at_any_shard_request() {
    let plan0 = vec![standard_plans().remove(0)];
    let config = CampaignConfig::quick();
    let run = || {
        let sinks = ObsSinks {
            recorder: Some(SharedRecorder::new()),
            metrics: Some(SharedRegistry::new()),
        };
        let table = run_campaign_jobs(&plan0, &config, SEED, &sinks, Jobs::serial());
        (
            table.render(),
            table.snapshots_json(),
            sinks.metrics.as_ref().unwrap().render_snapshot(),
        )
    };
    // One run per accepted shard request: the flag never reaches the
    // demand loop, so every run must agree byte for byte.
    let baseline = run();
    for k in [2usize, 4] {
        let _requested = Shards::new(k); // parsed, then deliberately unused
        assert_eq!(baseline, run(), "campaign output drifted at shards={k}");
    }
}

/// The three-release fleet run: the scalestudy world (weighted fleet,
/// mid-run promotion broadcast through the epoch mailbox) must produce
/// the identical merged digest at shards {1, 2, 4}.
#[test]
fn fleet_scale_world_digest_is_shard_invariant() {
    let config = ScaleConfig {
        demands: 8_192,
        shard_counts: vec![1, 2, 4],
        block: 256,
        cutover: 4_096,
    };
    let serial = run_scale(&config, 0x0BAD_5EED, Shards::serial());
    for k in [2, 4] {
        let sharded = run_scale(&config, 0x0BAD_5EED, Shards::new(k));
        assert_eq!(
            serial.stats.digest(),
            sharded.stats.digest(),
            "fleet digest differs at shards={k}"
        );
    }
    // And the full study asserts the same thing internally.
    let report = run_scalestudy(&config, 0x0BAD_5EED);
    assert_eq!(report.digest, serial.stats.digest());
}
