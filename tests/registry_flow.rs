//! Integration of the WS-stack pieces: registry discovery, release
//! links, upgrade notification, confidence publication and description
//! evolution — the full provider/consumer workflow around a managed
//! upgrade.

use wsu_wstack::notify::{NotificationBroker, UpgradeNotice};
use wsu_wstack::registry::{PublishedConfidence, Registry, ServiceRecord};
use wsu_wstack::wsdl::{Operation, ServiceDescription, XsdType};

fn wsdl(release: &str) -> ServiceDescription {
    let mut d = ServiceDescription::new("Quote", release);
    d.add_operation(
        Operation::new("getQuote")
            .with_input("symbol", XsdType::Str)
            .with_output("price", XsdType::Double),
    );
    d
}

#[test]
fn provider_publishes_upgrade_and_consumers_learn_of_it() {
    let mut registry = Registry::new();
    let mut broker = NotificationBroker::new();

    // Provider publishes 1.0; consumer discovers and subscribes.
    let old = registry.publish(ServiceRecord::new(
        "Quote",
        "http://q/1.0",
        "finance",
        wsdl("1.0"),
    ));
    let found = registry.find_by_name("Quote");
    assert_eq!(found.len(), 1);
    let sub = broker.subscribe("Quote");

    // Provider deploys 1.1 side by side and announces both ways.
    let new = registry.publish(ServiceRecord::new(
        "Quote",
        "http://q/1.1",
        "finance",
        wsdl("1.1"),
    ));
    registry.link_new_release(old, new).unwrap();
    broker.publish(UpgradeNotice {
        service: "Quote".into(),
        old_release: "1.0".into(),
        new_release: "1.1".into(),
        new_uri: "http://q/1.1".into(),
    });

    // Consumer sees the link and the notice.
    assert_eq!(registry.newer_release(old).unwrap(), Some(new));
    let notices = broker.drain(sub);
    assert_eq!(notices.len(), 1);
    assert_eq!(notices[0].new_uri, "http://q/1.1");

    // During the managed upgrade, the provider publishes confidence for
    // the new release, updating it as evidence accumulates.
    registry
        .publish_confidence(new, PublishedConfidence::new(1e-3, 0.42))
        .unwrap();
    registry
        .publish_confidence(new, PublishedConfidence::new(1e-3, 0.97))
        .unwrap();
    assert_eq!(
        registry.get(new).unwrap().confidence.unwrap().confidence,
        0.97
    );

    // After the switch the old release is withdrawn; its link goes too.
    registry.withdraw(old).unwrap();
    assert!(registry.get(old).is_none());
    assert_eq!(registry.find_by_name("Quote").len(), 1);
}

#[test]
fn interface_evolution_is_backward_compatible_via_pairing() {
    // The provider wants to publish confidence without breaking old
    // consumers: option 3 of Section 6.2.
    let mut description = wsdl("1.1");
    description
        .add_paired_confidence_operation("getQuote")
        .unwrap();

    // Old consumers still see getQuote unchanged...
    let base = description.operation("getQuote").unwrap();
    assert_eq!(base.response_parts().len(), 1);
    // ...new consumers switch to getQuoteConf.
    let paired = description.operation("getQuoteConf").unwrap();
    assert_eq!(paired.request_parts(), base.request_parts());
    assert!(paired.publishes_confidence());

    // The WSDL rendering carries both.
    let text = description.to_wsdl_like();
    assert!(text.contains("GetQuoteRequest"));
    assert!(text.contains("GetQuoteConfRequest"));
}

#[test]
fn category_search_spans_providers() {
    let mut registry = Registry::new();
    for (name, category) in [
        ("Quote", "finance"),
        ("Payments", "finance"),
        ("Weather", "meteo"),
    ] {
        registry.publish(ServiceRecord::new(
            name,
            format!("http://{name}/1.0"),
            category,
            ServiceDescription::new(name, "1.0"),
        ));
    }
    assert_eq!(registry.find_by_category("finance").len(), 2);
    assert_eq!(registry.find_by_category("meteo").len(), 1);
    assert_eq!(registry.len(), 3);
}
