//! End-to-end fault-injection campaign: a scripted crash → recover →
//! correlated-burst scenario must drive the management subsystem to the
//! paper's expected decision, and the campaign runner must be
//! byte-identical at `--jobs 1` and `--jobs 4`.
//!
//! Timeline (demand indices):
//!
//! * the old release fails evidently on every 9th demand throughout —
//!   the persistent defect motivating the upgrade;
//! * the new release crashes for its first 150 demands (teething
//!   trouble), then recovers;
//! * a correlated burst takes *both* releases down over `[600, 750)`.
//!
//! Expected decision: the middleware must not switch while the new
//! release is failing or during the coincident burst (the burst is no
//! evidence the new release is better), and must switch to the new
//! release after recovery, once post-burst evidence accumulates.

use wsu_bayes::ScaledBeta;
use wsu_core::manage::SwitchCriterion;
use wsu_core::middleware::MiddlewareConfig;
use wsu_core::upgrade::{DetectorKind, ManagedUpgrade, UpgradeConfig, UpgradePhase};
use wsu_experiments::campaign::{run_campaign_jobs, CampaignConfig, PlanSpec};
use wsu_experiments::midsim::ObsSinks;
use wsu_faults::{FaultAction, FaultClause, FaultInjector, FaultScenario, FaultTrigger};
use wsu_obs::{SharedRecorder, SharedRegistry, TraceEvent};
use wsu_simcore::dist::DelayModel;
use wsu_simcore::par::Jobs;
use wsu_simcore::rng::MasterSeed;
use wsu_wstack::endpoint::SyntheticService;

const SEED: MasterSeed = MasterSeed::new(0xE2E_FA17);
const BURST_END: u64 = 750;
const TOTAL_DEMANDS: u64 = 3_000;

/// The scripted scenario: persistent old-release defect, early
/// new-release crashes, coincident mid-run burst.
fn scripted_scenario() -> FaultScenario {
    FaultScenario::new("crash-recover-burst")
        // The burst clause goes first on both plans so it wins where the
        // windows overlap the persistent clauses.
        .coincident(FaultClause::new(
            "burst",
            FaultTrigger::DemandWindow {
                from: 600,
                to: BURST_END,
            },
            FaultAction::Crash,
        ))
        .old_clause(FaultClause::new(
            "old-defect",
            FaultTrigger::EveryNth { n: 9, phase: 4 },
            FaultAction::WrongValue { evident: true },
        ))
        .new_clause(FaultClause::new(
            "teething",
            FaultTrigger::DemandWindow { from: 0, to: 150 },
            FaultAction::Crash,
        ))
}

fn managed_scenario() -> ManagedUpgrade {
    let service = |release: &str| {
        SyntheticService::builder("Composite", release)
            .exec_time(DelayModel::constant(0.4))
            .build()
    };
    let scenario = scripted_scenario();
    let old = FaultInjector::new(service("1.0"), scenario.old, SEED);
    let new = FaultInjector::new(service("2.0"), scenario.new, SEED);
    let config = UpgradeConfig::default()
        .with_middleware(MiddlewareConfig::paper(2.0))
        .with_detector(DetectorKind::Perfect)
        .with_criterion(SwitchCriterion::better_than_old(0.9))
        // The scripted defect rates (~11% on the old release, teething
        // crashes on the new) sit far above the paper's default prior
        // support of [0, 0.01]; widen it so the posteriors can resolve
        // the releases instead of both saturating at the cap.
        .with_priors(
            ScaledBeta::new(1.0, 10.0, 0.5).unwrap(),
            ScaledBeta::new(2.0, 3.0, 0.5).unwrap(),
        )
        .with_assess_interval(100);
    ManagedUpgrade::new(old, new, config, SEED)
}

#[test]
fn scripted_campaign_reaches_the_papers_decision() {
    let mut upgrade = managed_scenario();
    // Phase 1+2+burst: no switch may happen while the new release is
    // still accumulating its crash record or during the coincident
    // burst — coincident failures are no evidence for switching.
    for demand in 0..BURST_END {
        upgrade.run_demand();
        assert_eq!(
            upgrade.phase(),
            UpgradePhase::Transitional,
            "premature switch at demand {demand}"
        );
    }
    // After the burst the new release is clean while the old keeps
    // failing every 9th demand: the criterion must eventually fire.
    upgrade.run_demands(TOTAL_DEMANDS - BURST_END);
    match upgrade.phase() {
        UpgradePhase::Switched { at_demand } => {
            assert!(
                at_demand > BURST_END,
                "switch at {at_demand} should follow the burst"
            );
        }
        other => panic!("expected a post-recovery switch, got {other:?}"),
    }
    // The detection audit saw the injected ground truth.
    let audit = upgrade.monitor().pair().unwrap().audit();
    assert!(audit.release_a().true_positives > 0, "old defects detected");
    assert!(audit.release_b().true_positives > 0, "new crashes detected");
    assert_eq!(audit.release_a().coverage(), Some(1.0));
    assert_eq!(audit.release_b().coverage(), Some(1.0));
}

#[test]
fn scripted_campaign_is_jobs_invariant() {
    let spec = PlanSpec::new(scripted_scenario(), DetectorKind::Perfect);
    let config = CampaignConfig {
        demands: 1_200,
        ..CampaignConfig::quick()
    };
    let observed = |jobs: Jobs| {
        let sinks = ObsSinks {
            recorder: Some(SharedRecorder::new()),
            metrics: Some(SharedRegistry::new()),
        };
        let table = run_campaign_jobs(
            &[spec.clone(), spec.clone(), spec.clone()],
            &config,
            SEED,
            &sinks,
            jobs,
        );
        (
            table.render(),
            sinks.metrics.as_ref().unwrap().render_snapshot(),
            sinks.recorder.as_ref().unwrap().snapshot(),
        )
    };
    let (text1, prom1, trace1) = observed(Jobs::serial());
    let (text4, prom4, trace4) = observed(Jobs::new(4));
    assert_eq!(text1, text4, "rendered table differs with jobs=4");
    assert_eq!(prom1, prom4, "metrics snapshot differs with jobs=4");
    assert_eq!(trace1, trace4, "event trace differs with jobs=4");
    // The trace interleaves injections with the middleware's events.
    let kinds: Vec<&str> = trace1.iter().map(TraceEvent::kind).collect();
    assert!(kinds.contains(&"FaultInjected"), "no injection events");
    assert!(kinds.contains(&"DemandDispatched"), "no middleware events");
    assert!(
        prom1.contains("wsu_fault_injected_total"),
        "metrics snapshot missing the injection counter"
    );
}
