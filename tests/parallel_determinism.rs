//! The parallel replication runner must be invisible in every output:
//! tables, metric snapshots and event traces are byte-identical whatever
//! the worker-pool size, because replications merge in replication
//! order. These tests pin that contract for the simulation-backed
//! experiments.

use wsu_experiments::ablation::{run_abort_ablation_jobs, run_adjudicator_ablation_jobs};
use wsu_experiments::capacity::{render_capacity_table, run_capacity_study_jobs};
use wsu_experiments::midsim::ObsSinks;
use wsu_experiments::table5::run_table5_jobs;
use wsu_experiments::table6::run_table6_jobs;
use wsu_obs::{SharedRecorder, SharedRegistry, TraceEvent};
use wsu_simcore::par::Jobs;
use wsu_simcore::rng::MasterSeed;
use wsu_workload::outcomes::CorrelatedOutcomes;
use wsu_workload::runs::RunSpec;
use wsu_workload::timing::ExecTimeModel;

const SEED: MasterSeed = MasterSeed::new(0x0BAD_5EED);

/// One observed table5 run at the given worker count, returning the
/// rendered table, the metrics snapshot and the event trace.
fn observed_table5(jobs: Jobs) -> (String, String, Vec<TraceEvent>) {
    let sinks = ObsSinks {
        recorder: Some(SharedRecorder::new()),
        metrics: Some(SharedRegistry::new()),
    };
    let table = run_table5_jobs(SEED, 400, &[1.5, 3.0], ExecTimeModel::paper(), &sinks, jobs);
    (
        table.render(),
        sinks.metrics.as_ref().unwrap().render_snapshot(),
        sinks.recorder.as_ref().unwrap().snapshot(),
    )
}

#[test]
fn table5_is_jobs_invariant_across_all_outputs() {
    let (text1, prom1, trace1) = observed_table5(Jobs::serial());
    let (text4, prom4, trace4) = observed_table5(Jobs::new(4));
    assert_eq!(text1, text4, "rendered table differs with jobs=4");
    assert_eq!(prom1, prom4, "metrics snapshot differs with jobs=4");
    assert_eq!(trace1, trace4, "event trace differs with jobs=4");
    // The snapshot carries the same per-cell engine gauges the committed
    // results/table5.prom does.
    for needle in [
        "wsu_engine_events_processed",
        "wsu_engine_queue_high_water",
        "cell=\"table5/run1/t1.5\"",
        "cell=\"table5/run4/t3\"",
    ] {
        assert!(prom1.contains(needle), "snapshot missing {needle}");
    }
    assert!(!trace1.is_empty(), "trace should carry simulation events");
}

#[test]
fn table6_is_jobs_invariant() {
    let run = |jobs| {
        run_table6_jobs(
            SEED,
            400,
            &[2.0],
            ExecTimeModel::paper(),
            &ObsSinks::default(),
            jobs,
        )
        .render()
    };
    assert_eq!(run(Jobs::serial()), run(Jobs::new(4)));
}

#[test]
fn capacity_is_jobs_invariant() {
    let gen = CorrelatedOutcomes::from_run(&RunSpec::run2());
    let run = |jobs| {
        render_capacity_table(&run_capacity_study_jobs(
            &gen,
            ExecTimeModel::calibrated(),
            &[0.4, 0.8],
            400,
            SEED,
            jobs,
        ))
    };
    assert_eq!(run(Jobs::serial()), run(Jobs::new(4)));
}

#[test]
fn ablations_are_jobs_invariant() {
    let adjudicator = |jobs| {
        run_adjudicator_ablation_jobs(SEED, 400, jobs)
            .iter()
            .map(|row| format!("{row:?}"))
            .collect::<Vec<_>>()
    };
    assert_eq!(adjudicator(Jobs::serial()), adjudicator(Jobs::new(4)));

    let abort = |jobs| {
        run_abort_ablation_jobs(
            2,
            1_000,
            wsu_bayes::whitebox::Resolution {
                a_cells: 24,
                b_cells: 24,
                q_cells: 8,
            },
            SEED,
            &[1.0, 5.0],
            jobs,
        )
        .iter()
        .map(|row| format!("{row:?}"))
        .collect::<Vec<_>>()
    };
    assert_eq!(abort(Jobs::serial()), abort(Jobs::new(4)));
}
