//! Property-based tests (proptest) of the cross-crate invariants the
//! system's correctness rests on.

use proptest::prelude::*;

use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::counts::JointCounts;
use wsu_bayes::posterior::GridPosterior;
use wsu_bayes::whitebox::{CoincidencePrior, Resolution, WhiteBoxInference};
use wsu_core::adjudicate::{Adjudicator, CollectedResponse, SelectionPolicy, SystemVerdict};
use wsu_core::release::ReleaseId;
use wsu_simcore::queue::EventQueue;
use wsu_simcore::rng::StreamRng;
use wsu_simcore::time::{SimDuration, SimTime};
use wsu_wstack::outcome::ResponseClass;

fn arb_class() -> impl Strategy<Value = ResponseClass> {
    prop_oneof![
        Just(ResponseClass::Correct),
        Just(ResponseClass::EvidentFailure),
        Just(ResponseClass::NonEvidentFailure),
    ]
}

fn arb_collected(max_len: usize) -> impl Strategy<Value = Vec<CollectedResponse>> {
    prop::collection::vec((arb_class(), 0.0f64..10.0), 0..max_len).prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (class, secs))| CollectedResponse {
                release: ReleaseId::new(i),
                class,
                exec_time: SimDuration::from_secs(secs),
            })
            .collect()
    })
}

fn arb_policy() -> impl Strategy<Value = SelectionPolicy> {
    prop_oneof![
        Just(SelectionPolicy::Random),
        Just(SelectionPolicy::Fastest),
        Just(SelectionPolicy::Majority),
    ]
}

proptest! {
    /// The adjudicator's verdict structure follows Section 5.2.1 exactly,
    /// for any mix of responses and any selection policy.
    #[test]
    fn adjudicator_respects_paper_rules(
        collected in arb_collected(6),
        policy in arb_policy(),
        seed in any::<u64>(),
    ) {
        let adj = Adjudicator::new(policy);
        let mut rng = StreamRng::from_seed(seed);
        let result = adj.adjudicate(&collected, &mut rng);
        let valid: Vec<_> = collected.iter().filter(|r| r.class.is_valid()).collect();
        match result.verdict {
            SystemVerdict::Unavailable => prop_assert!(collected.is_empty()),
            SystemVerdict::Response(ResponseClass::EvidentFailure) => {
                // Only when nothing valid was collected.
                prop_assert!(!collected.is_empty());
                prop_assert!(valid.is_empty());
                prop_assert!(result.source.is_none());
            }
            SystemVerdict::Response(class) => {
                // The forwarded class is held by some valid response.
                prop_assert!(valid.iter().any(|r| r.class == class));
                // And attributed to a release that produced that class.
                if let Some(source) = result.source {
                    prop_assert!(collected
                        .iter()
                        .any(|r| r.release == source && r.class == class));
                }
            }
        }
    }

    /// Fastest selection always forwards a valid response that no other
    /// valid response beats on time.
    #[test]
    fn fastest_policy_is_actually_fastest(
        collected in arb_collected(6),
        seed in any::<u64>(),
    ) {
        let adj = Adjudicator::new(SelectionPolicy::Fastest);
        let mut rng = StreamRng::from_seed(seed);
        let result = adj.adjudicate(&collected, &mut rng);
        if let (SystemVerdict::Response(class), Some(source)) = (result.verdict, result.source) {
            if class.is_valid() {
                let source_time = collected
                    .iter()
                    .find(|r| r.release == source)
                    .map(|r| r.exec_time)
                    .unwrap();
                let all_agree = collected
                    .iter()
                    .filter(|r| r.class.is_valid())
                    .all(|r| r.class == class);
                if !all_agree {
                    for r in collected.iter().filter(|r| r.class.is_valid()) {
                        prop_assert!(source_time <= r.exec_time);
                    }
                }
            }
        }
    }

    /// Grid posteriors: `confidence` is a monotone CDF and `percentile`
    /// inverts it, for arbitrary positive weights.
    #[test]
    fn posterior_confidence_and_percentile_are_consistent(
        weights in prop::collection::vec(0.0f64..1.0, 2..40),
        q in 0.01f64..0.99,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let edges: Vec<f64> = (0..=weights.len()).map(|i| i as f64).collect();
        let posterior = GridPosterior::from_weights(edges, weights);
        // CDF monotone.
        let mut prev = 0.0;
        for i in 0..=posterior.grid().len() {
            let c = posterior.confidence(i as f64);
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
        // Percentile inverts confidence.
        let x = posterior.percentile(q);
        prop_assert!((posterior.confidence(x) - q).abs() < 1e-9);
    }

    /// Scaled-Beta: quantile inverts the CDF across the parameter space.
    #[test]
    fn scaled_beta_quantile_inverts_cdf(
        alpha in 0.5f64..30.0,
        beta in 0.5f64..30.0,
        range in 1e-4f64..1.0,
        q in 0.01f64..0.99,
    ) {
        let dist = ScaledBeta::new(alpha, beta, range).unwrap();
        let x = dist.quantile(q);
        prop_assert!((dist.cdf(x) - q).abs() < 1e-7);
        prop_assert!(x >= 0.0 && x <= range);
    }

    /// White-box inference: more clean evidence never loosens the B
    /// marginal's upper percentile.
    #[test]
    fn clean_evidence_is_monotone(extra in 1u64..40_000) {
        let engine = WhiteBoxInference::with_resolution(
            ScaledBeta::new(20.0, 20.0, 0.002).unwrap(),
            ScaledBeta::new(2.0, 3.0, 0.002).unwrap(),
            CoincidencePrior::IndifferenceUniform,
            Resolution { a_cells: 24, b_cells: 24, q_cells: 6 },
        );
        let before = engine
            .posterior(&JointCounts::from_raw(1_000, 0, 0, 0))
            .marginal_b()
            .percentile(0.99);
        let after = engine
            .posterior(&JointCounts::from_raw(1_000 + extra, 0, 0, 0))
            .marginal_b()
            .percentile(0.99);
        prop_assert!(after <= before + 1e-9);
    }

    /// Joint counts: recording preserves the accounting identities.
    #[test]
    fn joint_counts_accounting(outcomes in prop::collection::vec((any::<bool>(), any::<bool>()), 0..500)) {
        let mut counts = JointCounts::new();
        for &(a, b) in &outcomes {
            counts.record(a, b);
        }
        prop_assert_eq!(counts.demands() as usize, outcomes.len());
        prop_assert_eq!(
            counts.both_failed() + counts.only_a_failed() + counts.only_b_failed()
                + counts.both_succeeded(),
            counts.demands()
        );
        let a_true = outcomes.iter().filter(|o| o.0).count() as u64;
        let b_true = outcomes.iter().filter(|o| o.1).count() as u64;
        prop_assert_eq!(counts.a_failures(), a_true);
        prop_assert_eq!(counts.b_failures(), b_true);
    }

    /// The event queue pops in non-decreasing time order, FIFO at ties,
    /// for arbitrary schedules.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0.0f64..100.0, 0..200)) {
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.push(SimTime::from_secs(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut last_seq_at_time: Option<usize> = None;
        while let Some((t, seq)) = queue.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                if let Some(prev) = last_seq_at_time {
                    prop_assert!(seq > prev, "FIFO violated at equal times");
                }
            }
            last_time = t;
            last_seq_at_time = Some(seq);
        }
    }

    /// RNG streams: `next_below` is always in range; `pick_weighted`
    /// never selects a zero-weight class.
    #[test]
    fn rng_range_invariants(seed in any::<u64>(), n in 1u64..1000, zero_idx in 0usize..3) {
        let mut rng = StreamRng::from_seed(seed);
        for _ in 0..50 {
            prop_assert!(rng.next_below(n) < n);
        }
        let mut weights = [1.0, 1.0, 1.0];
        weights[zero_idx] = 0.0;
        for _ in 0..50 {
            prop_assert_ne!(rng.pick_weighted(&weights), zero_idx);
        }
    }
}
