//! Property-style tests of the cross-crate invariants the system's
//! correctness rests on.
//!
//! Originally written with `proptest`; rewritten as deterministic
//! seeded-loop checks (no external dev-dependencies — see the note in
//! `crates/simcore/tests/properties.rs`).

use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::counts::JointCounts;
use wsu_bayes::posterior::GridPosterior;
use wsu_bayes::whitebox::{CoincidencePrior, Resolution, WhiteBoxInference};
use wsu_core::adjudicate::{Adjudicator, CollectedResponse, SelectionPolicy, SystemVerdict};
use wsu_core::release::ReleaseId;
use wsu_simcore::queue::EventQueue;
use wsu_simcore::rng::{MasterSeed, StreamRng};
use wsu_simcore::time::{SimDuration, SimTime};
use wsu_wstack::outcome::ResponseClass;

fn rng_for(test: &str) -> StreamRng {
    MasterSeed::new(0x43_52_4F_53_53_50_52_4F).stream(test)
}

fn f64_in(rng: &mut StreamRng, lo: f64, hi: f64) -> f64 {
    let unit = rng.next_u64() as f64 / u64::MAX as f64;
    lo + unit * (hi - lo)
}

fn arb_class(rng: &mut StreamRng) -> ResponseClass {
    match rng.next_below(3) {
        0 => ResponseClass::Correct,
        1 => ResponseClass::EvidentFailure,
        _ => ResponseClass::NonEvidentFailure,
    }
}

fn arb_collected(rng: &mut StreamRng, max_len: usize) -> Vec<CollectedResponse> {
    let len = rng.next_below(max_len as u64) as usize;
    (0..len)
        .map(|i| CollectedResponse {
            release: ReleaseId::new(i),
            class: arb_class(rng),
            exec_time: SimDuration::from_secs(f64_in(rng, 0.0, 10.0)),
        })
        .collect()
}

fn arb_policy(rng: &mut StreamRng) -> SelectionPolicy {
    match rng.next_below(3) {
        0 => SelectionPolicy::Random,
        1 => SelectionPolicy::Fastest,
        _ => SelectionPolicy::Majority,
    }
}

/// The adjudicator's verdict structure follows Section 5.2.1 exactly,
/// for any mix of responses and any selection policy.
#[test]
fn adjudicator_respects_paper_rules() {
    let mut rng = rng_for("adjudicator_rules");
    for _ in 0..128 {
        let collected = arb_collected(&mut rng, 6);
        let policy = arb_policy(&mut rng);
        let adj = Adjudicator::new(policy);
        let mut seed_rng = StreamRng::from_seed(rng.next_u64());
        let result = adj.adjudicate(&collected, &mut seed_rng);
        let valid: Vec<_> = collected.iter().filter(|r| r.class.is_valid()).collect();
        match result.verdict {
            SystemVerdict::Unavailable => assert!(collected.is_empty()),
            SystemVerdict::Response(ResponseClass::EvidentFailure) => {
                // Only when nothing valid was collected.
                assert!(!collected.is_empty());
                assert!(valid.is_empty());
                assert!(result.source.is_none());
            }
            SystemVerdict::Response(class) => {
                // The forwarded class is held by some valid response.
                assert!(valid.iter().any(|r| r.class == class));
                // And attributed to a release that produced that class.
                if let Some(source) = result.source {
                    assert!(collected
                        .iter()
                        .any(|r| r.release == source && r.class == class));
                }
            }
        }
    }
}

/// Fastest selection always forwards a valid response that no other
/// valid response beats on time.
#[test]
fn fastest_policy_is_actually_fastest() {
    let mut rng = rng_for("fastest_policy");
    for _ in 0..128 {
        let collected = arb_collected(&mut rng, 6);
        let adj = Adjudicator::new(SelectionPolicy::Fastest);
        let mut seed_rng = StreamRng::from_seed(rng.next_u64());
        let result = adj.adjudicate(&collected, &mut seed_rng);
        if let (SystemVerdict::Response(class), Some(source)) = (result.verdict, result.source) {
            if class.is_valid() {
                let source_time = collected
                    .iter()
                    .find(|r| r.release == source)
                    .map(|r| r.exec_time)
                    .unwrap();
                let all_agree = collected
                    .iter()
                    .filter(|r| r.class.is_valid())
                    .all(|r| r.class == class);
                if !all_agree {
                    for r in collected.iter().filter(|r| r.class.is_valid()) {
                        assert!(source_time <= r.exec_time);
                    }
                }
            }
        }
    }
}

/// Grid posteriors: `confidence` is a monotone CDF and `percentile`
/// inverts it, for arbitrary positive weights.
#[test]
fn posterior_confidence_and_percentile_are_consistent() {
    let mut rng = rng_for("posterior_consistency");
    for _ in 0..64 {
        let len = 2 + rng.next_below(38) as usize;
        let weights: Vec<f64> = (0..len).map(|_| f64_in(&mut rng, 0.0, 1.0)).collect();
        let q = f64_in(&mut rng, 0.01, 0.99);
        if weights.iter().sum::<f64>() <= 0.0 {
            continue;
        }
        let edges: Vec<f64> = (0..=weights.len()).map(|i| i as f64).collect();
        let posterior = GridPosterior::from_weights(edges, weights);
        // CDF monotone.
        let mut prev = 0.0;
        for i in 0..=posterior.grid().len() {
            let c = posterior.confidence(i as f64);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        // Percentile inverts confidence.
        let x = posterior.percentile(q);
        assert!((posterior.confidence(x) - q).abs() < 1e-9);
    }
}

/// Scaled-Beta: quantile inverts the CDF across the parameter space.
#[test]
fn scaled_beta_quantile_inverts_cdf() {
    let mut rng = rng_for("beta_quantile");
    for _ in 0..64 {
        let alpha = f64_in(&mut rng, 0.5, 30.0);
        let beta = f64_in(&mut rng, 0.5, 30.0);
        let range = f64_in(&mut rng, 1e-4, 1.0);
        let q = f64_in(&mut rng, 0.01, 0.99);
        let dist = ScaledBeta::new(alpha, beta, range).unwrap();
        let x = dist.quantile(q);
        assert!((dist.cdf(x) - q).abs() < 1e-7);
        assert!(x >= 0.0 && x <= range);
    }
}

/// White-box inference: more clean evidence never loosens the B
/// marginal's upper percentile.
#[test]
fn clean_evidence_is_monotone() {
    let mut rng = rng_for("clean_evidence");
    let engine = WhiteBoxInference::with_resolution(
        ScaledBeta::new(20.0, 20.0, 0.002).unwrap(),
        ScaledBeta::new(2.0, 3.0, 0.002).unwrap(),
        CoincidencePrior::IndifferenceUniform,
        Resolution {
            a_cells: 24,
            b_cells: 24,
            q_cells: 6,
        },
    );
    let before = engine
        .posterior(&JointCounts::from_raw(1_000, 0, 0, 0))
        .marginal_b()
        .percentile(0.99);
    for _ in 0..8 {
        let extra = 1 + rng.next_below(40_000);
        let after = engine
            .posterior(&JointCounts::from_raw(1_000 + extra, 0, 0, 0))
            .marginal_b()
            .percentile(0.99);
        assert!(after <= before + 1e-9);
    }
}

/// Joint counts: recording preserves the accounting identities.
#[test]
fn joint_counts_accounting() {
    let mut rng = rng_for("joint_accounting");
    for _ in 0..64 {
        let len = rng.next_below(500) as usize;
        let outcomes: Vec<(bool, bool)> = (0..len)
            .map(|_| (rng.next_below(2) == 0, rng.next_below(2) == 0))
            .collect();
        let mut counts = JointCounts::new();
        for &(a, b) in &outcomes {
            counts.record(a, b);
        }
        assert_eq!(counts.demands() as usize, outcomes.len());
        assert_eq!(
            counts.both_failed()
                + counts.only_a_failed()
                + counts.only_b_failed()
                + counts.both_succeeded(),
            counts.demands()
        );
        let a_true = outcomes.iter().filter(|o| o.0).count() as u64;
        let b_true = outcomes.iter().filter(|o| o.1).count() as u64;
        assert_eq!(counts.a_failures(), a_true);
        assert_eq!(counts.b_failures(), b_true);
    }
}

/// The event queue pops in non-decreasing time order, FIFO at ties,
/// for arbitrary schedules.
#[test]
fn event_queue_is_time_ordered() {
    let mut rng = rng_for("event_queue_order");
    for _ in 0..48 {
        let len = rng.next_below(200) as usize;
        // Coarse times force plenty of ties.
        let times: Vec<f64> = (0..len).map(|_| rng.next_below(100) as f64).collect();
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.push(SimTime::from_secs(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut last_seq_at_time: Option<usize> = None;
        while let Some((t, seq)) = queue.pop() {
            assert!(t >= last_time);
            if t == last_time {
                if let Some(prev) = last_seq_at_time {
                    assert!(seq > prev, "FIFO violated at equal times");
                }
            }
            last_time = t;
            last_seq_at_time = Some(seq);
        }
    }
}

/// RNG streams: `next_below` is always in range; `pick_weighted` never
/// selects a zero-weight class.
#[test]
fn rng_range_invariants() {
    let mut rng = rng_for("rng_ranges");
    for _ in 0..64 {
        let seed = rng.next_u64();
        let n = 1 + rng.next_below(999);
        let zero_idx = rng.next_below(3) as usize;
        let mut stream = StreamRng::from_seed(seed);
        for _ in 0..50 {
            assert!(stream.next_below(n) < n);
        }
        let mut weights = [1.0, 1.0, 1.0];
        weights[zero_idx] = 0.0;
        for _ in 0..50 {
            assert_ne!(stream.pick_weighted(&weights), zero_idx);
        }
    }
}
