//! HTTP round trip against a canary fleet: `wsu-serve`'s front serving
//! the `canary-fleet` spec, driven closed-loop by `wsu-loadgen`'s
//! driver, with a promotion posted mid-run. The cutover must not drop
//! or double-count a single demand: the client-side success count, the
//! front's demand counter, the `/metrics` scrape and the `/snapshot`
//! aggregate must all agree exactly — and once the promotion has
//! propagated, every demand must be served by the promoted release.

use std::thread;
use std::time::Duration;

use wsu_core::serve::ServeSpec;
use wsu_experiments::loadgen::{run_load, scrape_demand_total, LoadgenConfig};
use wsu_experiments::serve::{FrontConfig, HttpFront};
use wsu_obs::http::{http_get, HttpClient};

const IO_TIMEOUT: Duration = Duration::from_secs(5);

fn canary_front(workers: usize) -> HttpFront {
    HttpFront::start(FrontConfig::new(
        "127.0.0.1:0",
        workers,
        ServeSpec::canary_fleet(33),
    ))
    .expect("start front")
}

#[test]
fn promote_endpoint_validates_its_input() {
    let front = canary_front(1);
    let addr = front.local_addr();
    let mut client = HttpClient::connect(addr, IO_TIMEOUT).expect("connect");
    // The canary fleet has releases 0..=2; release 9 does not exist.
    let resp = client.request("POST", "/promote/9", b"").expect("promote");
    assert_eq!(resp.status, 404, "{}", resp.body);
    let resp = client
        .request("POST", "/promote/abc", b"")
        .expect("promote");
    assert_eq!(resp.status, 400, "{}", resp.body);
    let resp = client.request("GET", "/promote/1", b"").expect("promote");
    assert_eq!(resp.status, 405, "{}", resp.body);
    // A rejected promotion must not disturb serving.
    let resp = client.request("POST", "/demand", b"").expect("demand");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(front.demands(), 1);
    front.shutdown();
}

#[test]
fn mid_run_promotion_drops_and_double_counts_nothing() {
    let front = canary_front(3);
    let addr = front.local_addr();

    // Closed-loop load from the loadgen driver while the promotion
    // lands on another connection mid-run.
    let config = LoadgenConfig {
        addr,
        connections: 4,
        requests_per_conn: 750,
        warmup_per_conn: 50,
        timeout: IO_TIMEOUT,
        open_rate: None,
    };
    let summary = thread::scope(|scope| {
        let load = scope.spawn(|| run_load(&config).expect("load run"));
        thread::sleep(Duration::from_millis(5));
        let mut client = HttpClient::connect(addr, IO_TIMEOUT).expect("connect");
        let resp = client.request("POST", "/promote/2", b"").expect("promote");
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(resp.body, "{\"promoted\":2}");
        load.join().expect("load thread")
    });
    assert_eq!(summary.errors, 0, "load saw request errors: {summary:?}");
    let load_demands = summary.ok + summary.warmup_ok;
    assert_eq!(
        load_demands,
        (config.requests_per_conn + config.warmup_per_conn) * config.connections as u64
    );

    // After the cutover has been applied by every worker, each demand
    // must come from the promoted release.
    let mut client = HttpClient::connect(addr, IO_TIMEOUT).expect("connect");
    let verification = 24u64;
    for _ in 0..verification {
        let resp = client.request("POST", "/demand", b"").expect("demand");
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(
            resp.body.contains("\"source\":2,"),
            "demand not served by the promoted release: {}",
            resp.body
        );
    }
    drop(client);

    // Client-side count == front counter == /metrics scrape ==
    // /snapshot aggregate: nothing dropped, nothing double-counted.
    let expected = load_demands + verification;
    assert_eq!(front.demands(), expected, "front counter disagrees");
    let scraped = scrape_demand_total(addr).expect("scrape");
    assert_eq!(scraped, expected, "metrics scrape disagrees");
    let snapshot = http_get(addr, "/snapshot").expect("snapshot");
    assert_eq!(snapshot.status, 200);
    assert!(
        snapshot.body.contains(&format!("\"demands\":{expected},")),
        "snapshot disagrees: {}",
        snapshot.body
    );
    front.shutdown();
}
