//! End-to-end integration tests of the managed upgrade across crates:
//! synthetic services (wstack) behind the middleware (core), scored by
//! detectors (detect), assessed by the Bayesian engine (bayes).

use composite_ws_upgrade::core::manage::SwitchCriterion;
use composite_ws_upgrade::core::upgrade::{
    DetectorKind, ManagedUpgrade, UpgradeConfig, UpgradePhase,
};
use composite_ws_upgrade::simcore::rng::MasterSeed;
use composite_ws_upgrade::wstack::endpoint::SyntheticService;
use composite_ws_upgrade::wstack::outcome::OutcomeProfile;
use wsu_bayes::whitebox::Resolution;

fn small_res() -> Resolution {
    Resolution {
        a_cells: 40,
        b_cells: 40,
        q_cells: 10,
    }
}

fn service(version: &str, profile: OutcomeProfile) -> SyntheticService {
    SyntheticService::builder("Svc", version)
        .outcomes(profile)
        .exec_time_mean(0.1)
        .build()
}

#[test]
fn upgrade_switches_when_new_release_proves_itself() {
    let config = UpgradeConfig::default()
        .with_resolution(small_res())
        .with_criterion(SwitchCriterion::better_than_old(0.95))
        .with_assess_interval(250);
    let mut upgrade = ManagedUpgrade::new(
        service("1.0", OutcomeProfile::new(0.97, 0.02, 0.01)),
        service("1.1", OutcomeProfile::always_correct()),
        config,
        MasterSeed::new(1),
    );
    upgrade.run_demands(4_000);
    let UpgradePhase::Switched { at_demand } = upgrade.phase() else {
        panic!(
            "expected a switch; report: {:?}",
            upgrade.confidence_report()
        );
    };
    assert!(
        at_demand % 250 == 0,
        "switch happens on assessment boundaries"
    );
    // After the switch only the new release serves, and service goes on.
    let record = upgrade.run_demand();
    assert_eq!(record.per_release.len(), 1);
    assert!(upgrade.monitor().system_stats().availability() > 0.99);
}

#[test]
fn upgrade_protects_against_a_worse_new_release() {
    let config = UpgradeConfig::default()
        .with_resolution(small_res())
        .with_criterion(SwitchCriterion::better_than_old(0.95))
        .with_assess_interval(250);
    let mut upgrade = ManagedUpgrade::new(
        service("1.0", OutcomeProfile::always_correct()),
        service("1.1", OutcomeProfile::new(0.9, 0.05, 0.05)),
        config,
        MasterSeed::new(2),
    );
    upgrade.run_demands(3_000);
    assert_eq!(
        upgrade.phase(),
        UpgradePhase::Transitional,
        "a visibly worse release must never be switched to"
    );
    // Its measured stats confirm why.
    let new_stats = upgrade
        .monitor()
        .release_stats(upgrade.new_release())
        .expect("observed");
    assert!(new_stats.failure_rate() > 0.05);
}

#[test]
fn composite_availability_dominates_components() {
    // The 1-out-of-2 argument of Section 5.2.3(1), on live middleware.
    let config = UpgradeConfig::default()
        .with_resolution(small_res())
        .with_auto_switch(false);
    let mut upgrade = ManagedUpgrade::new(
        service("1.0", OutcomeProfile::new(0.8, 0.1, 0.1)),
        service("1.1", OutcomeProfile::new(0.8, 0.1, 0.1)),
        config,
        MasterSeed::new(3),
    );
    upgrade.run_demands(3_000);
    let old = upgrade
        .monitor()
        .release_stats(upgrade.old_release())
        .unwrap()
        .availability();
    let new = upgrade
        .monitor()
        .release_stats(upgrade.new_release())
        .unwrap()
        .availability();
    let sys = upgrade.monitor().system_stats().availability();
    assert!(sys >= old.max(new) - 1e-9, "system {sys} vs {old}/{new}");
}

#[test]
fn detector_imperfection_biases_confidence_optimistically() {
    // Omission detection hides failures; the new release's posterior
    // P99 must look no worse than under perfect detection.
    let base = UpgradeConfig::default()
        .with_resolution(small_res())
        .with_auto_switch(false);
    let profile = OutcomeProfile::new(0.98, 0.01, 0.01);
    let mut perfect = ManagedUpgrade::new(
        service("1.0", profile),
        service("1.1", profile),
        base.clone().with_detector(DetectorKind::Perfect),
        MasterSeed::new(4),
    );
    let mut omission = ManagedUpgrade::new(
        service("1.0", profile),
        service("1.1", profile),
        base.with_detector(DetectorKind::Omission(0.9)),
        MasterSeed::new(4),
    );
    perfect.run_demands(2_000);
    omission.run_demands(2_000);
    let p = perfect.confidence_report();
    let o = omission.confidence_report();
    assert!(
        o.new_release_p99 <= p.new_release_p99 + 1e-9,
        "omission {} vs perfect {}",
        o.new_release_p99,
        p.new_release_p99
    );
}

#[test]
fn runs_are_deterministic_given_seed() {
    let build = || {
        let config = UpgradeConfig::default()
            .with_resolution(small_res())
            .with_assess_interval(500);
        let mut upgrade = ManagedUpgrade::new(
            service("1.0", OutcomeProfile::new(0.95, 0.03, 0.02)),
            service("1.1", OutcomeProfile::new(0.99, 0.005, 0.005)),
            config,
            MasterSeed::new(42),
        );
        upgrade.run_demands(1_500);
        (
            upgrade.phase(),
            upgrade.confidence_report(),
            upgrade.monitor().system_stats().mean_response_time(),
        )
    };
    assert_eq!(build(), build());
}

#[test]
fn mediator_and_upgrade_agree_on_clean_service() {
    // Cross-check: a black-box mediator and the white-box upgrade both
    // grow confident in a clean release.
    use composite_ws_upgrade::bayes::beta::ScaledBeta;
    use composite_ws_upgrade::core::confidence_pub::MediatorService;
    use composite_ws_upgrade::wstack::message::Envelope;

    let upstream = service("1.1", OutcomeProfile::always_correct());
    let mut mediator =
        MediatorService::new(upstream, ScaledBeta::new(2.0, 3.0, 0.01).unwrap(), 1e-2);
    let mut rng = MasterSeed::new(5).stream("mediator");
    for _ in 0..2_000 {
        mediator.mediate(&Envelope::request("invoke"), &mut rng);
    }
    assert!(mediator.current_confidence() > 0.99);

    let config = UpgradeConfig::default()
        .with_resolution(small_res())
        .with_auto_switch(false);
    let mut upgrade = ManagedUpgrade::new(
        service("1.0", OutcomeProfile::always_correct()),
        service("1.1", OutcomeProfile::always_correct()),
        config,
        MasterSeed::new(5),
    );
    upgrade.run_demands(2_000);
    let published = upgrade.publishable_confidence(1e-2).unwrap();
    assert!(published.confidence > 0.9);
}
