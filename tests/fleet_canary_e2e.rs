//! End-to-end staged canary chain: a scripted 3-stage upgrade must
//! promote its first canary, substitute a crash-bursting second canary
//! with a registry stand-in, promote the stand-in, and finally roll
//! back a persistently-faulty third canary once the substitute pool is
//! exhausted — halting the chain.
//!
//! Timeline (chain stages behind the stable release `1.0`):
//!
//! * **stage 1** (`1.1`) is clean — the ramp walks it to full weight
//!   and promotes it;
//! * **stage 2** (`1.2`) crashes on every demand — the incident binds
//!   the one registry stand-in as the stage's replacement canary, and
//!   the stand-in then earns the promotion itself;
//! * **stage 3** (`1.3`) returns evident wrong values on every second
//!   demand — a persistent fault; with the pool now empty the
//!   substitute strategy degrades to a rollback and the chain halts.
//!
//! The same chain, replicated through [`run_replications`], must
//! produce byte-identical tables, traces and metrics at `--jobs 1` and
//! `--jobs 4`.

use wsu_core::composite::{CompositeEndpoint, CompositeService};
use wsu_core::fleet::{
    FleetOrchestrator, FleetPlan, FleetStatus, ProbeRule, PromotionRule, RollbackRule,
    SubstitutePool,
};
use wsu_core::manage::RecoveryStrategy;
use wsu_experiments::midsim::ObsSinks;
use wsu_experiments::replicate::run_replications;
use wsu_faults::{FaultAction, FaultClause, FaultInjector, FaultTrigger, FleetFaultScenario};
use wsu_obs::{SharedRecorder, SharedRegistry, TraceEvent};
use wsu_simcore::dist::DelayModel;
use wsu_simcore::par::Jobs;
use wsu_simcore::rng::MasterSeed;
use wsu_wstack::endpoint::SyntheticService;
use wsu_wstack::registry::ServiceRecord;
use wsu_wstack::wsdl::ServiceDescription;

const SEED: MasterSeed = MasterSeed::new(0xE2E_F1EE7);
const DEMANDS: u64 = 1_500;

fn service(release: &str) -> SyntheticService {
    SyntheticService::builder("Composite", release)
        .exec_time(DelayModel::constant(0.4))
        .build()
}

/// The scripted faults: stage 2 crash-bursts from its first demand,
/// stage 3 fails evidently on every second demand; the stable release
/// and stage 1 stay clean.
fn chain_scenario() -> FleetFaultScenario {
    FleetFaultScenario::new("canary-chain-e2e", 4)
        .release_clause(
            2,
            FaultClause::new(
                "stage2-burst",
                FaultTrigger::DemandWindow {
                    from: 0,
                    to: u64::MAX,
                },
                FaultAction::Crash,
            ),
        )
        .release_clause(
            3,
            FaultClause::new(
                "stage3-persistent",
                FaultTrigger::EveryNth { n: 2, phase: 0 },
                FaultAction::WrongValue { evident: true },
            ),
        )
}

fn chain_plan() -> FleetPlan {
    FleetPlan {
        assess_interval: 25,
        promotion: PromotionRule {
            target_pfd: 0.05,
            confidence: 0.8,
            min_demands: 20,
        },
        rollback: RollbackRule {
            window: 10,
            max_fault_rate: 0.4,
        },
        probe: ProbeRule {
            window: 20,
            min_availability: 0.9,
        },
        suspend_after: 5,
        ..FleetPlan::with_strategy(RecoveryStrategy::Substitute)
    }
}

/// One stand-in: a functionally-equivalent composite service published
/// in the registry pool. The chain has two faulty canaries but only
/// this one candidate, so the second incident must fall back to a
/// rollback.
fn single_stand_in_pool() -> SubstitutePool {
    let mut pool = SubstitutePool::new();
    let composite = CompositeService::builder("CompositeAlt")
        .component(
            "backend",
            SyntheticService::builder("Backend", "1.0")
                .exec_time(DelayModel::constant(0.4))
                .build(),
        )
        .build();
    pool.register(
        ServiceRecord::new(
            "CompositeAlt",
            "http://standby/CompositeAlt",
            "composite-equivalent",
            ServiceDescription::new("CompositeAlt", "sub-1.0"),
        ),
        Box::new(CompositeEndpoint::new(composite, "sub-1.0")),
    );
    pool
}

fn run_chain(sinks: &ObsSinks) -> FleetStatus {
    let scenario = chain_scenario();
    let mut injectors = scenario.plans.iter().enumerate().map(|(i, plan)| {
        let mut injector = FaultInjector::new(service(&format!("1.{i}")), plan.clone(), SEED);
        if let Some(recorder) = &sinks.recorder {
            injector = injector.with_recorder(recorder.clone());
        }
        if let Some(metrics) = &sinks.metrics {
            injector = injector.with_metrics(metrics.clone());
        }
        injector
    });
    let mut fleet = FleetOrchestrator::new(
        injectors.next().expect("stable release"),
        chain_plan(),
        SEED,
    );
    for injector in injectors {
        fleet.push_stage(injector);
    }
    fleet.set_substitutes(single_stand_in_pool(), "composite-equivalent");
    if let Some(recorder) = &sinks.recorder {
        fleet.attach_recorder(recorder.clone());
    }
    if let Some(metrics) = &sinks.metrics {
        fleet.attach_metrics(metrics);
    }
    fleet.run_demands(DEMANDS);
    fleet.status()
}

#[test]
fn chain_promotes_substitutes_then_rolls_back() {
    let sinks = ObsSinks {
        recorder: Some(SharedRecorder::new()),
        metrics: Some(SharedRegistry::new()),
    };
    let status = run_chain(&sinks);

    // Stage 1 promoted cleanly; the stand-in earned the second
    // promotion after replacing the bursting stage-2 canary.
    assert_eq!(status.stats.promotions, 2, "status: {status:?}");
    assert_eq!(status.stats.substitutions, 1, "status: {status:?}");
    // The persistent stage-3 fault found the pool empty: rollback.
    assert_eq!(status.stats.rollbacks, 1, "status: {status:?}");
    assert!(status.chain_halted, "status: {status:?}");
    assert!(status.canary.is_none(), "status: {status:?}");
    assert_eq!(status.pending_stages, 0, "status: {status:?}");
    assert!(status.stats.incidents >= 2, "status: {status:?}");
    // The stand-in (deployed right after the bursting stage-2 canary,
    // before stage 3) is the final stable release, at full weight.
    assert_eq!(status.stable.index(), 3, "status: {status:?}");
    assert!((status.stable_weight - 1.0).abs() < 1e-12);
    assert!(status.stats.availability() > 0.9, "status: {status:?}");

    // The decision trail tells the same story, in order.
    let decisions: Vec<String> = sinks
        .recorder
        .as_ref()
        .unwrap()
        .snapshot()
        .iter()
        .filter_map(|event| match event {
            TraceEvent::SwitchDecision { decision, .. } => Some(decision.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(
        decisions,
        vec![
            "promote".to_owned(),
            "substitute".to_owned(),
            "promote".to_owned(),
            "rollback-no-substitute".to_owned(),
        ],
        "unexpected decision trail"
    );
    // Ground truth was injected on both faulty stages.
    let prom = sinks.metrics.as_ref().unwrap().render_snapshot();
    assert!(prom.contains("wsu_fault_injected_total"), "{prom}");
    assert!(prom.contains("wsu_fleet_substitutions_total"), "{prom}");
}

#[test]
fn chain_is_jobs_invariant() {
    let observed = |jobs: Jobs| {
        let sinks = ObsSinks {
            recorder: Some(SharedRecorder::new()),
            metrics: Some(SharedRegistry::new()),
        };
        let statuses = run_replications(jobs, 3, &sinks, |_, local| run_chain(local));
        let summary: Vec<String> = statuses.iter().map(|s| format!("{s:?}")).collect();
        (
            summary,
            sinks.metrics.as_ref().unwrap().render_snapshot(),
            sinks.recorder.as_ref().unwrap().snapshot(),
        )
    };
    let (sum1, prom1, trace1) = observed(Jobs::serial());
    let (sum4, prom4, trace4) = observed(Jobs::new(4));
    assert_eq!(sum1, sum4, "statuses differ with jobs=4");
    assert_eq!(prom1, prom4, "metrics snapshot differs with jobs=4");
    assert_eq!(trace1, trace4, "event trace differs with jobs=4");
    // The merged trace interleaves injections with fleet lifecycle
    // events.
    let kinds: Vec<&str> = trace1.iter().map(TraceEvent::kind).collect();
    assert!(kinds.contains(&"FaultInjected"), "no injection events");
    assert!(kinds.contains(&"SwitchDecision"), "no decision events");
    assert!(kinds.contains(&"ConfidenceUpdated"), "no assessments");
}
