//! Facade crate re-exporting the composite-WS managed-upgrade workspace.
//!
//! See the README for a tour. The heavy lifting lives in the sub-crates:
//! [`core`] (managed-upgrade middleware), [`bayes`] (confidence
//! inference), [`wstack`] (simulated WS stack), [`detect`] (failure
//! detection), [`workload`] (demand generation), [`simcore`]
//! (event-driven engine), [`obs`] (tracing and metrics) and
//! [`experiments`] (paper reproduction harness).
//!
//! # Example
//!
//! ```
//! use composite_ws_upgrade::core::manage::SwitchCriterion;
//! use composite_ws_upgrade::core::upgrade::{ManagedUpgrade, UpgradeConfig};
//! use composite_ws_upgrade::simcore::rng::MasterSeed;
//! use composite_ws_upgrade::wstack::endpoint::SyntheticService;
//! use composite_ws_upgrade::wstack::outcome::OutcomeProfile;
//!
//! let old = SyntheticService::builder("Quote", "1.0")
//!     .outcomes(OutcomeProfile::new(0.998, 0.001, 0.001))
//!     .build();
//! let new = SyntheticService::builder("Quote", "1.1").build();
//! let config = UpgradeConfig::default()
//!     .with_criterion(SwitchCriterion::better_than_old(0.95));
//! let mut upgrade = ManagedUpgrade::new(old, new, config, MasterSeed::new(7));
//! upgrade.run_demands(100);
//! assert_eq!(upgrade.demands(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wsu_bayes as bayes;
pub use wsu_core as core;
pub use wsu_detect as detect;
pub use wsu_experiments as experiments;
pub use wsu_obs as obs;
pub use wsu_simcore as simcore;
pub use wsu_workload as workload;
pub use wsu_wstack as wstack;
