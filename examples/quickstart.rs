//! Quickstart: a managed online upgrade from release 1.0 to 1.1.
//!
//! Deploys two releases of a component Web Service behind the upgrade
//! middleware, runs consumer demands through the adjudicated pair, and
//! watches the Bayesian confidence until the switching criterion fires.
//!
//! Run with: `cargo run --release --example quickstart`

use composite_ws_upgrade::core::manage::SwitchCriterion;
use composite_ws_upgrade::core::upgrade::{
    DetectorKind, ManagedUpgrade, UpgradeConfig, UpgradePhase,
};
use composite_ws_upgrade::simcore::rng::MasterSeed;
use composite_ws_upgrade::wstack::endpoint::SyntheticService;
use composite_ws_upgrade::wstack::outcome::OutcomeProfile;

fn main() {
    // The old release has been in service for a while: pfd ~ 2e-3.
    let old = SyntheticService::builder("QuoteService", "1.0")
        .outcomes(OutcomeProfile::new(0.998, 0.001, 0.001))
        .exec_time_mean(0.2)
        .build();
    // The new release fixes bugs: pfd ~ 5e-4 (but nobody knows that yet).
    let new = SyntheticService::builder("QuoteService", "1.1")
        .outcomes(OutcomeProfile::new(0.9995, 0.00025, 0.00025))
        .exec_time_mean(0.2)
        .build();

    let config = UpgradeConfig::default()
        // Switch once we are 95% confident the new release is no worse
        // than the old one (the paper's criterion 3).
        .with_criterion(SwitchCriterion::better_than_old(0.95))
        // Score the releases back-to-back plus imperfect oracles.
        .with_detector(DetectorKind::BackToBackThenOmission(0.15))
        .with_assess_interval(500);

    let mut upgrade = ManagedUpgrade::new(old, new, config, MasterSeed::new(2024));

    println!("demands  old P99 pfd   new P99 pfd   criterion met  phase");
    for round in 1..=20 {
        upgrade.run_demands(500);
        let report = upgrade.confidence_report();
        let phase = match upgrade.phase() {
            UpgradePhase::Transitional => "transitional".to_owned(),
            UpgradePhase::Switched { at_demand } => format!("switched@{at_demand}"),
            UpgradePhase::Aborted { at_demand } => format!("aborted@{at_demand}"),
        };
        println!(
            "{:>7}  {:.4e}    {:.4e}    {:<13}  {}",
            round * 500,
            report.old_release_p99,
            report.new_release_p99,
            report.criterion_met,
            phase
        );
        if let UpgradePhase::Switched { .. } = upgrade.phase() {
            break;
        }
    }

    println!("\ncomposite service through the upgrade:");
    let sys = upgrade.monitor().system_stats();
    println!(
        "  availability {:.4}, mean response time {:.3}s, correct {}/{}",
        sys.availability(),
        sys.mean_response_time(),
        sys.count(composite_ws_upgrade::wstack::outcome::ResponseClass::Correct),
        sys.total_responses()
    );
    println!("\n{}", upgrade.monitor().render_report());
    println!("management log:");
    for entry in upgrade.log().entries() {
        println!("  {entry}");
    }
}
