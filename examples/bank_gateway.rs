//! A payment gateway with an explicit dependability target, sequential
//! execution for minimal server capacity, and automatic recovery.
//!
//! Banking is one of the critical WS applications the paper motivates
//! with. This gateway:
//!
//! * runs the two releases in **sequential mode** (Section 4.2, mode 4)
//!   to halve back-end load — the second release is tried only when the
//!   first response is evidently incorrect or times out;
//! * switches only on **criterion 2**: 99% confidence that the new
//!   release's pfd is at or below an explicit `5e-3` target;
//! * **suspends and restarts** a release that produces a streak of
//!   evident failures (an injected outage).
//!
//! Run with: `cargo run --release --example bank_gateway`

use composite_ws_upgrade::core::manage::{RecoveryPolicy, SwitchCriterion};
use composite_ws_upgrade::core::middleware::MiddlewareConfig;
use composite_ws_upgrade::core::modes::{OperatingMode, SequentialOrder};
use composite_ws_upgrade::core::upgrade::{ManagedUpgrade, UpgradeConfig, UpgradePhase};
use composite_ws_upgrade::simcore::dist::DelayModel;
use composite_ws_upgrade::simcore::rng::{MasterSeed, StreamRng};
use composite_ws_upgrade::simcore::time::SimDuration;
use composite_ws_upgrade::wstack::endpoint::{Invocation, ServiceEndpoint, SyntheticService};
use composite_ws_upgrade::wstack::message::Envelope;
use composite_ws_upgrade::wstack::outcome::{OutcomeProfile, ResponseClass};
use composite_ws_upgrade::wstack::wsdl::ServiceDescription;

/// The old release, with an outage injected between demands 2,000 and
/// 2,200: every response in that window is an evident failure.
struct FlakyGateway {
    inner: SyntheticService,
    served: u64,
    outage: std::ops::Range<u64>,
}

impl ServiceEndpoint for FlakyGateway {
    fn describe(&self) -> &ServiceDescription {
        self.inner.describe()
    }

    fn invoke(&mut self, request: &Envelope, rng: &mut StreamRng) -> Invocation {
        let n = self.served;
        self.served += 1;
        if self.outage.contains(&n) {
            return Invocation::from_class(
                request.operation(),
                ResponseClass::EvidentFailure,
                SimDuration::from_secs(0.05),
            );
        }
        self.inner.invoke(request, rng)
    }
}

fn main() {
    let old = FlakyGateway {
        inner: SyntheticService::builder("PaymentGateway", "3.4")
            .outcomes(OutcomeProfile::new(0.995, 0.003, 0.002))
            .exec_time(DelayModel::exponential(0.15))
            .build(),
        served: 0,
        outage: 2_000..2_200,
    };
    let new = SyntheticService::builder("PaymentGateway", "3.5")
        .outcomes(OutcomeProfile::new(0.9990, 0.0005, 0.0005))
        .exec_time(DelayModel::exponential(0.12))
        .build();

    let mut middleware_config = MiddlewareConfig::paper(1.0);
    middleware_config.mode = OperatingMode::Sequential {
        order: SequentialOrder::Deployment,
    };

    let config = UpgradeConfig::default()
        .with_middleware(middleware_config)
        .with_criterion(SwitchCriterion::reach_target(5e-3, 0.99))
        .with_operation("authorizePayment")
        .with_assess_interval(500);

    let mut upgrade = ManagedUpgrade::new(old, new, config, MasterSeed::new(31337));
    upgrade
        .manager_mut()
        .set_recovery_policy(Some(RecoveryPolicy {
            suspend_after: 5,
            auto_restart: true,
        }));

    println!("processing 10,000 payment authorizations in sequential mode ...");
    upgrade.run_demands(10_000);

    match upgrade.phase() {
        UpgradePhase::Switched { at_demand } => {
            println!("switched to gateway 3.5 after {at_demand} authorizations");
        }
        UpgradePhase::Aborted { at_demand } => {
            println!("upgrade aborted after {at_demand} demands");
        }
        UpgradePhase::Transitional => {
            println!("criterion 2 not yet met; still running both releases");
        }
    }

    let report = upgrade.confidence_report();
    println!(
        "P(pfd_new <= 5e-3) target met: {}; new release P99 pfd {:.3e}",
        report.criterion_met, report.new_release_p99
    );

    // Sequential mode back-end savings: how often was the second release
    // actually consulted?
    let old_stats = upgrade.monitor().release_stats(upgrade.old_release());
    let new_stats = upgrade.monitor().release_stats(upgrade.new_release());
    if let (Some(old_stats), Some(new_stats)) = (old_stats, new_stats) {
        let old_invocations = old_stats.total_responses() + old_stats.nrdt();
        let new_invocations = new_stats.total_responses() + new_stats.nrdt();
        println!(
            "back-end load: old release invoked {old_invocations} times, new release only {new_invocations}",
        );
    }

    // The injected outage should show up as recovery actions in the log.
    println!("\nrecovery/decision log:");
    for entry in upgrade.log().entries() {
        println!("  {entry}");
    }

    let sys = upgrade.monitor().system_stats();
    println!(
        "\ncomposite gateway: availability {:.4}, mean authorization latency {:.3}s",
        sys.availability(),
        sys.mean_response_time()
    );
}
