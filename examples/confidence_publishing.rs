//! The five confidence-publishing options of the paper's Section 6.2,
//! demonstrated end to end on one service.
//!
//! 1. extend the operation's response with a confidence part (breaks
//!    backward compatibility);
//! 2. a separate `OperationConf` operation (backward compatible, extra
//!    round trip);
//! 3. a paired `<op>Conf` operation (backward compatible *and*
//!    per-invocation);
//! 4. transparent protocol handlers on both sides;
//! 5. a trusted mediator service measuring and republishing confidence.
//!
//! Run with: `cargo run --release --example confidence_publishing`

use composite_ws_upgrade::bayes::beta::ScaledBeta;
use composite_ws_upgrade::core::confidence_pub::{
    augment_response, extract_confidence, paired_response, ConfidenceDirectory, MediatorService,
    ProtocolHandler,
};
use composite_ws_upgrade::simcore::rng::MasterSeed;
use composite_ws_upgrade::wstack::endpoint::SyntheticService;
use composite_ws_upgrade::wstack::message::Envelope;
use composite_ws_upgrade::wstack::outcome::OutcomeProfile;
use composite_ws_upgrade::wstack::registry::{Registry, ServiceRecord};
use composite_ws_upgrade::wstack::wsdl::{Operation, ServiceDescription, XsdType};

fn main() {
    // The service of the paper's WSDL listing: operation1(param1: int,
    // param2: string) -> Op1Result: string.
    let mut wsdl = ServiceDescription::new("ExampleService", "1.0");
    wsdl.add_operation(
        Operation::new("operation1")
            .with_input("param1", XsdType::Int)
            .with_input("param2", XsdType::Str)
            .with_output("Op1Result", XsdType::Str),
    );
    let response = Envelope::response("operation1").with_part("Op1Result", "ok");
    let confidence = 0.97;

    // ---- Option 1: extended response --------------------------------
    let mut wsdl1 = wsdl.clone();
    wsdl1.extend_response_with_confidence("operation1").unwrap();
    println!("=== option 1: extended response (not backward compatible) ===");
    println!("{}", wsdl1.to_wsdl_like());
    println!(
        "\nwire message:\n{}",
        augment_response(&response, confidence)
    );

    // ---- Option 2: a separate confidence operation -------------------
    let mut wsdl2 = wsdl.clone();
    wsdl2.add_confidence_operation().unwrap();
    let mut directory = ConfidenceDirectory::new();
    directory.publish("operation1", confidence);
    let conf_request = Envelope::request("OperationConf").with_part("operation", "operation1");
    let conf_response = directory.handle_conf_request(&conf_request).unwrap();
    println!("\n=== option 2: OperationConf operation (backward compatible) ===");
    println!("request:\n{conf_request}");
    println!("response:\n{conf_response}");

    // ---- Option 3: paired operation ----------------------------------
    let mut wsdl3 = wsdl.clone();
    wsdl3.add_paired_confidence_operation("operation1").unwrap();
    println!("\n=== option 3: paired operation1Conf (best of both) ===");
    println!(
        "operations now published: {:?}",
        wsdl3
            .operations()
            .iter()
            .map(|o| o.name().to_owned())
            .collect::<Vec<_>>()
    );
    println!("wire message:\n{}", paired_response(&response, confidence));

    // ---- Option 4: protocol handlers ---------------------------------
    println!("\n=== option 4: transparent protocol handlers ===");
    let on_the_wire = ProtocolHandler::attach(&response, confidence);
    let (application_view, extracted) = ProtocolHandler::strip(&on_the_wire);
    println!("client application sees:\n{application_view}");
    println!("handler extracted confidence: {extracted:?}");
    // A handler-less client simply sees the extra part:
    println!(
        "legacy client still finds its result: {:?}",
        on_the_wire.part("Op1Result")
    );

    // ---- Option 5: trusted mediator -----------------------------------
    println!("\n=== option 5: trusted mediator service ===");
    let upstream = SyntheticService::builder("ExampleService", "1.0")
        .outcomes(OutcomeProfile::new(0.998, 0.001, 0.001))
        .build();
    let prior = ScaledBeta::new(1.0, 9.0, 0.05).unwrap();
    let mut mediator = MediatorService::new(upstream, prior, 0.01);
    let mut rng = MasterSeed::new(5).stream("mediator-demo");
    let mut last = Envelope::response("noop");
    for _ in 0..2_000 {
        last = mediator.mediate(&Envelope::request("operation1"), &mut rng);
    }
    println!(
        "after {} mediated calls ({} failures observed): P(pfd <= 1e-2) = {:.4}",
        mediator.demands(),
        mediator.failures(),
        mediator.current_confidence()
    );
    println!(
        "last mediated response carried confidence {:?}",
        extract_confidence(&last)
    );

    // And the mediator keeps the registry record fresh.
    let mut registry = Registry::new();
    let key = registry.publish(ServiceRecord::new(
        "ExampleService",
        "http://svc.example/ws",
        "demo",
        wsdl,
    ));
    mediator.publish_to_registry(&mut registry, key).unwrap();
    let record = registry.get(key).unwrap();
    println!(
        "registry record now advertises P(pfd <= {:.0e}) = {:.4}",
        record.confidence.unwrap().pfd_target,
        record.confidence.unwrap().confidence
    );
}
