//! Three releases behind one interface: N-version operation, majority
//! voting and run-time adaptation of the reliability/responsiveness
//! trade-off (paper Section 4.2, modes 1 and 3).
//!
//! The paper's architecture is not limited to two releases — "users can
//! add new or remove some of the old releases of the WS". Here releases
//! 1.0, 1.1 and 2.0-beta run side by side: majority voting masks the
//! beta's wrong answers, and a [`DynamicModeController`] retunes the
//! quorum when the composite gets too slow or too wrong.
//!
//! Run with: `cargo run --release --example three_releases`

use composite_ws_upgrade::core::adapt::DynamicModeController;
use composite_ws_upgrade::core::adjudicate::{Adjudicator, SelectionPolicy};
use composite_ws_upgrade::core::middleware::{MiddlewareConfig, UpgradeMiddleware};
use composite_ws_upgrade::core::modes::OperatingMode;
use composite_ws_upgrade::core::monitor::MonitoringSubsystem;
use composite_ws_upgrade::simcore::rng::MasterSeed;
use composite_ws_upgrade::simcore::time::SimDuration;
use composite_ws_upgrade::wstack::endpoint::SyntheticService;
use composite_ws_upgrade::wstack::message::Envelope;
use composite_ws_upgrade::wstack::outcome::{OutcomeProfile, ResponseClass};

fn main() {
    let seed = MasterSeed::new(90210);
    let mut config = MiddlewareConfig::paper(2.0);
    config.mode = OperatingMode::ParallelReliability;
    config.adjudicator = Adjudicator::new(SelectionPolicy::Majority);
    let mut middleware = UpgradeMiddleware::new(config);

    // Three releases: the stable pair and an eager beta with a high
    // non-evident failure rate.
    middleware.deploy(
        SyntheticService::builder("Catalog", "1.0")
            .outcomes(OutcomeProfile::new(0.96, 0.02, 0.02))
            .exec_time_mean(0.5)
            .build(),
    );
    middleware.deploy(
        SyntheticService::builder("Catalog", "1.1")
            .outcomes(OutcomeProfile::new(0.97, 0.015, 0.015))
            .exec_time_mean(0.45)
            .build(),
    );
    middleware.deploy(
        SyntheticService::builder("Catalog", "2.0-beta")
            .outcomes(OutcomeProfile::new(0.85, 0.05, 0.10))
            .exec_time_mean(0.3)
            .build(),
    );

    let mut monitor = MonitoringSubsystem::new(0);
    let mut rng = seed.stream("demands");
    let mut mon_rng = seed.stream("monitor");
    let request = Envelope::request("lookup");
    for _ in 0..5_000 {
        let record = middleware
            .process(&request, &mut rng)
            .expect("active releases");
        monitor.observe(&record, &mut mon_rng);
    }

    println!("majority voting over three releases (5,000 demands):");
    for info in middleware.release_infos() {
        let stats = monitor
            .release_stats(composite_ws_upgrade::core::release::ReleaseId::new(
                info.id.index(),
            ))
            .expect("observed");
        println!(
            "  {:<9}  correct {:>5.3}  MET {:.3}s",
            info.version,
            stats.count(ResponseClass::Correct) as f64 / stats.total_responses() as f64,
            stats.mean_exec_time()
        );
    }
    let sys = monitor.system_stats();
    println!(
        "  system     correct {:>5.3}  MET {:.3}s  <- the voter masks the beta",
        sys.count(ResponseClass::Correct) as f64 / sys.total_responses() as f64,
        sys.mean_response_time()
    );

    // --- Mode 3 with run-time adaptation ------------------------------
    let mut config = middleware.config();
    config.mode = OperatingMode::ParallelDynamic { quorum: 3 };
    middleware.set_config(config);
    let controller = DynamicModeController::new(
        SimDuration::from_secs(0.75), // aggressive latency target
        0.05,                         // NER budget
        3,
    );

    println!("\nadaptive mode 3 (latency target 0.75s, NER budget 5%):");
    for epoch in 1..=6 {
        let mut epoch_monitor = MonitoringSubsystem::new(0);
        for _ in 0..1_000 {
            let record = middleware
                .process(&request, &mut rng)
                .expect("active releases");
            epoch_monitor.observe(&record, &mut mon_rng);
        }
        let stats = epoch_monitor.system_stats();
        let action = controller.adapt(&mut middleware, stats);
        println!(
            "  epoch {epoch}: mode {:<26} MET {:.3}s  NER {:>4.1}%  -> {action:?}",
            middleware.config().mode.label(),
            stats.mean_response_time(),
            100.0 * stats.count(ResponseClass::NonEvidentFailure) as f64
                / stats.total_responses() as f64,
        );
    }
}
