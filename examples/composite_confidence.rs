//! Confidence in a composite Web Service built from third-party
//! components — including one that is upgraded with only a single
//! operational release (paper Sections 2.2 and 3.2).
//!
//! An e-shop composes `Inventory`, `Payments` and `Shipping`. The
//! shipping provider swaps releases underneath its consumers (no
//! side-by-side deployment), so the e-shop can only watch the release
//! string and apply the paper's conservative rule: after an undetected
//! upgrade, published confidence must not exceed what the old release
//! had earned.
//!
//! Run with: `cargo run --release --example composite_confidence`

use composite_ws_upgrade::bayes::beta::ScaledBeta;
use composite_ws_upgrade::core::composite::CompositeService;
use composite_ws_upgrade::core::single_release::SingleReleaseTracker;
use composite_ws_upgrade::simcore::rng::MasterSeed;
use composite_ws_upgrade::simcore::time::SimDuration;
use composite_ws_upgrade::wstack::endpoint::{ServiceEndpoint, SyntheticService};
use composite_ws_upgrade::wstack::message::Envelope;
use composite_ws_upgrade::wstack::outcome::{OutcomeProfile, ResponseClass};
use composite_ws_upgrade::wstack::registry::PublishedConfidence;

fn main() {
    let seed = MasterSeed::new(808);

    // --- The composite e-shop ----------------------------------------
    let mut shop = CompositeService::builder("EShop")
        .glue_time(SimDuration::from_secs(0.02))
        .glue_confidence(PublishedConfidence::new(1e-4, 0.999))
        .component_with_confidence(
            "inventory",
            SyntheticService::builder("Inventory", "2.3")
                .outcomes(OutcomeProfile::new(0.999, 0.0005, 0.0005))
                .exec_time_mean(0.15)
                .build(),
            PublishedConfidence::new(1e-3, 0.99),
        )
        .component_with_confidence(
            "payments",
            SyntheticService::builder("Payments", "5.1")
                .outcomes(OutcomeProfile::new(0.9995, 0.00025, 0.00025))
                .exec_time_mean(0.25)
                .build(),
            PublishedConfidence::new(5e-4, 0.98),
        )
        .component_with_confidence(
            "shipping",
            SyntheticService::builder("Shipping", "1.0")
                .outcomes(OutcomeProfile::new(0.998, 0.001, 0.001))
                .exec_time_mean(0.2)
                .build(),
            PublishedConfidence::new(2e-3, 0.95),
        )
        .build();

    let composed = shop.composed_confidence().expect("all confidences known");
    println!(
        "composite confidence (union bound): P(pfd <= {:.2e}) >= {:.4}",
        composed.pfd_target, composed.confidence
    );

    let mut rng = seed.stream("shop-traffic");
    let mut correct = 0u32;
    let n = 5_000;
    for _ in 0..n {
        let inv = shop.invoke(&Envelope::request("checkout"), &mut rng);
        if inv.class == ResponseClass::Correct {
            correct += 1;
        }
    }
    println!(
        "measured composite correctness over {n} checkouts: {:.4}",
        correct as f64 / n as f64
    );

    // --- Section 3.2: the shipping provider swaps releases underneath --
    println!("\nshipping provider upgrades with a single operational release:");
    let mut tracker = SingleReleaseTracker::new(ScaledBeta::new(1.0, 9.0, 0.05).unwrap(), 512);
    let mut ship_v1 = SyntheticService::builder("Shipping", "1.0")
        .outcomes(OutcomeProfile::new(0.998, 0.001, 0.001))
        .build();
    let mut ship_v2 = SyntheticService::builder("Shipping", "2.0")
        .outcomes(OutcomeProfile::new(0.9995, 0.00025, 0.00025))
        .build();
    let mut rng = seed.stream("shipping-watch");
    let target = 5e-3;

    for demand in 0..8_000u32 {
        // The provider swaps at demand 3,000 — the consumer is not told.
        let endpoint: &mut SyntheticService = if demand < 3_000 {
            &mut ship_v1
        } else {
            &mut ship_v2
        };
        let invocation = endpoint.invoke(&Envelope::request("track"), &mut rng);
        let release = endpoint.describe().release().to_owned();
        let swapped = tracker.observe(&release, invocation.class != ResponseClass::Correct);
        if swapped {
            println!(
                "  demand {demand}: upgrade detected ({} -> {})",
                tracker.history().last().unwrap().release,
                release
            );
        }
        if demand % 2_000 == 1_999 {
            println!(
                "  demand {:>5}: release {:<4} fresh confidence {:.4}, reported (conservative) {:.4}",
                demand + 1,
                tracker.current_release().unwrap(),
                tracker.fresh_confidence(target),
                tracker.reported_confidence(target)
            );
        }
    }

    // The conservative report feeds back into the composite.
    let reported = tracker.reported_confidence(target);
    shop.update_component_confidence("shipping", PublishedConfidence::new(target, reported));
    let updated = shop.composed_confidence().unwrap();
    println!(
        "\ncomposite confidence after the shipping upgrade: P(pfd <= {:.2e}) >= {:.4}",
        updated.pfd_target, updated.confidence
    );
}
