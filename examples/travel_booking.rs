//! A composite travel-booking Web Service whose flight-search component
//! is upgraded online by a third party.
//!
//! This is the scenario of the paper's Figs. 1–2: `TravelBooking`
//! composes `FlightSearch` and `HotelSearch`, both discovered through a
//! UDDI-like registry. The `FlightSearch` provider deploys release 1.1
//! next to 1.0, announces it via the registry release link *and* a
//! notification broker, and the composite service runs a managed upgrade
//! instead of being forcibly switched.
//!
//! Run with: `cargo run --release --example travel_booking`

use composite_ws_upgrade::core::manage::SwitchCriterion;
use composite_ws_upgrade::core::upgrade::{ManagedUpgrade, UpgradeConfig, UpgradePhase};
use composite_ws_upgrade::simcore::rng::MasterSeed;
use composite_ws_upgrade::wstack::endpoint::SyntheticService;
use composite_ws_upgrade::wstack::notify::{NotificationBroker, UpgradeNotice};
use composite_ws_upgrade::wstack::outcome::OutcomeProfile;
use composite_ws_upgrade::wstack::registry::{Registry, ServiceRecord};
use composite_ws_upgrade::wstack::wsdl::{Operation, ServiceDescription, XsdType};

fn flight_wsdl(release: &str) -> ServiceDescription {
    let mut wsdl = ServiceDescription::new("FlightSearch", release);
    wsdl.add_operation(
        Operation::new("searchFlights")
            .with_input("from", XsdType::Str)
            .with_input("to", XsdType::Str)
            .with_input("date", XsdType::Str)
            .with_output("flights", XsdType::Str),
    );
    wsdl
}

fn main() {
    // --- Service publication (the providers' side) -------------------
    let mut registry = Registry::new();
    let flights_v10 = registry.publish(ServiceRecord::new(
        "FlightSearch",
        "http://flights.example/ws/1.0",
        "travel",
        flight_wsdl("1.0"),
    ));
    registry.publish(ServiceRecord::new(
        "HotelSearch",
        "http://hotels.example/ws/1.0",
        "travel",
        ServiceDescription::new("HotelSearch", "1.0"),
    ));

    // --- Discovery (the composite service's side) --------------------
    let hits = registry.find_by_category("travel");
    println!("discovered {} travel services:", hits.len());
    for (key, record) in &hits {
        println!("  {key}  {:<12}  {}", record.name, record.uri);
    }

    // --- The provider upgrades FlightSearch online -------------------
    let flights_v11 = registry.publish(ServiceRecord::new(
        "FlightSearch",
        "http://flights.example/ws/1.1",
        "travel",
        flight_wsdl("1.1"),
    ));
    registry.link_new_release(flights_v10, flights_v11).unwrap();

    let mut broker = NotificationBroker::new();
    let subscription = broker.subscribe("FlightSearch");
    broker.publish(UpgradeNotice {
        service: "FlightSearch".into(),
        old_release: "1.0".into(),
        new_release: "1.1".into(),
        new_uri: "http://flights.example/ws/1.1".into(),
    });

    // The composite service learns of the upgrade both ways.
    let linked = registry.newer_release(flights_v10).unwrap();
    println!("\nregistry release link: {flights_v10} -> {linked:?}");
    for notice in broker.drain(subscription) {
        println!(
            "notification: {} {} -> {} at {}",
            notice.service, notice.old_release, notice.new_release, notice.new_uri
        );
    }

    // --- Managed upgrade instead of a blind switch -------------------
    // Simulated behaviours: 1.0 is a known quantity, 1.1 is actually
    // better but arrives with no operational evidence.
    let v10 = SyntheticService::builder("FlightSearch", "1.0")
        .outcomes(OutcomeProfile::new(0.996, 0.002, 0.002))
        .exec_time_mean(0.4)
        .build();
    let v11 = SyntheticService::builder("FlightSearch", "1.1")
        .outcomes(OutcomeProfile::new(0.999, 0.0005, 0.0005))
        .exec_time_mean(0.3)
        .build();

    let config = UpgradeConfig::default()
        .with_criterion(SwitchCriterion::better_than_old(0.9))
        .with_operation("searchFlights")
        .with_assess_interval(250);
    let mut upgrade = ManagedUpgrade::new(v10, v11, config, MasterSeed::new(777));

    println!("\nrunning booking traffic through the managed upgrade ...");
    upgrade.run_demands(5_000);

    match upgrade.phase() {
        UpgradePhase::Switched { at_demand } => {
            println!("switched to FlightSearch 1.1 after {at_demand} bookings");
        }
        UpgradePhase::Aborted { at_demand } => {
            println!("upgrade aborted after {at_demand} demands");
        }
        UpgradePhase::Transitional => {
            println!("still transitional after 5,000 bookings");
        }
    }
    let report = upgrade.confidence_report();
    println!(
        "confidence: old P99 pfd {:.3e}, new P99 pfd {:.3e}",
        report.old_release_p99, report.new_release_p99
    );

    // Publish the confidence in the new release back into the registry
    // for other consumers (Section 6.2's UDDI option).
    let published = upgrade.publishable_confidence(5e-3).unwrap();
    registry.publish_confidence(flights_v11, published).unwrap();
    let record = registry.get(flights_v11).unwrap();
    println!(
        "registry now advertises: P(pfd <= {:.0e}) = {:.3} for FlightSearch 1.1",
        record.confidence.unwrap().pfd_target,
        record.confidence.unwrap().confidence
    );

    // Finally the provider withdraws the old release.
    registry.withdraw(flights_v10).unwrap();
    println!(
        "old release withdrawn; registry holds {} records",
        registry.len()
    );
}
